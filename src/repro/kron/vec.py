"""Matrix-free Kronecker matvec and power iteration.

The "vec trick": for ``A = A₁ ⊗ ... ⊗ A_N`` and a vector ``x`` viewed as
an N-dimensional tensor with mode sizes ``(m₁, ..., m_N)``,

    (⊗_k A_k) x  =  vec( X ×₁ A₁ ×₂ A₂ ... ×_N A_N )

i.e. one small multiply per mode instead of ever forming A.  Cost is
``O(Σ_k nnz(A_k) · (total / m_k))`` — for star chains a few passes over
the vector — so eigen-estimation runs on products whose *matrix* could
never be built (vector length is the binding constraint, not edge
count).

This implements the paper's "eigenvectors ... future research" item
computationally; :mod:`repro.design.spectrum` provides the closed-form
counterpart and the two are cross-checked in the tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DesignError, ShapeError
from repro.kron.chain import KroneckerChain
from repro.sparse.convert import as_coo

#: Refuse matvecs on products with more vector entries than this.
MAX_VECTOR_LENGTH = 50_000_000


def chain_matvec(chain: KroneckerChain, x: np.ndarray) -> np.ndarray:
    """``y = (⊗ A_k) x`` without materializing the product.

    Works factor by factor: reshape the running vector so the current
    mode is the leading axis, apply the factor with a sparse-dense
    multiply, move on.  Float64 throughout.
    """
    n = chain.num_vertices
    if n > MAX_VECTOR_LENGTH:
        raise MemoryError(
            f"product has {n} vertices; matvec vectors of that length "
            f"exceed the {MAX_VECTOR_LENGTH} cap"
        )
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ShapeError(f"x must have shape ({n},), got {x.shape}")
    sizes = [m.shape[0] for m in chain.factors]
    # Tensorize: axis k has size m_k, index order matches mixed-radix
    # encoding (most significant digit first).
    tensor = x.reshape(sizes)
    for k, factor in enumerate(chain.factors):
        coo = as_coo(factor)
        moved = np.moveaxis(tensor, k, 0)
        flat = moved.reshape(sizes[k], -1)
        out = np.zeros_like(flat)
        # out[r, :] += v * flat[c, :] for each stored (r, c, v).
        np.add.at(out, coo.rows, coo.vals[:, None].astype(np.float64) * flat[coo.cols])
        tensor = np.moveaxis(out.reshape(moved.shape), 0, k)
    return tensor.reshape(n)


def power_iteration(
    chain: KroneckerChain,
    *,
    max_iterations: int = 200,
    tol: float = 1e-10,
    seed: int = 0,
) -> Tuple[float, np.ndarray, int]:
    """Spectral radius and a dominant vector of a symmetric chain,
    matrix-free.

    Iterates on ``A²`` (two matvecs per step): bipartite star products
    carry paired ``±ρ`` extremes, on which plain power iteration
    oscillates forever, while ``A²``'s leading eigenvalue ``ρ²`` is
    simple-signed and converges.  Returns ``(radius, unit vector in the
    dominant ±ρ eigenspace, iterations used)``.
    """
    n = chain.num_vertices
    if n < 1:
        raise DesignError("chain has no vertices")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    radius_sq = 0.0
    for iteration in range(1, max_iterations + 1):
        w = chain_matvec(chain, chain_matvec(chain, v))
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0, v, iteration  # v in the null space of A²; ρ|_v = 0
        w /= norm
        new_radius_sq = float(w @ chain_matvec(chain, chain_matvec(chain, w)))
        if abs(new_radius_sq - radius_sq) <= tol * max(1.0, abs(new_radius_sq)):
            return math_sqrt(new_radius_sq), w, iteration
        radius_sq = new_radius_sq
        v = w
    return math_sqrt(radius_sq), v, max_iterations


def math_sqrt(value: float) -> float:
    """sqrt clamped at zero (Rayleigh quotients can dip -eps below)."""
    return float(np.sqrt(max(value, 0.0)))


def spectral_radius_estimate(chain: KroneckerChain, **kwargs) -> float:
    """Spectral radius of a symmetric chain via A² power iteration."""
    value, _, _ = power_iteration(chain, **kwargs)
    return value


def leading_eigenvector_factors(chain: KroneckerChain) -> List[np.ndarray]:
    """Per-factor leading eigenvectors, whose ⊗ is a leading eigenvector
    of the chain (eigenvectors of a Kronecker product are Kronecker
    products of factor eigenvectors).

    Uses dense ``eigh`` on each (tiny, symmetric) factor.
    """
    vecs: List[np.ndarray] = []
    for factor in chain.factors:
        dense = as_coo(factor).to_dense().astype(np.float64)
        if not np.allclose(dense, dense.T):
            raise DesignError("leading_eigenvector_factors requires symmetric factors")
        values, vectors = np.linalg.eigh(dense)
        lead = int(np.argmax(np.abs(values)))
        vecs.append(vectors[:, lead])
    return vecs
