"""Component-grouping permutations (the Fig. 1 "P=" view).

Weichsel's theorem: the Kronecker product of two connected bipartite
graphs is disconnected — Fig. 1 shows the product of two stars splitting
into two bipartite sub-graphs once rows/columns are permuted to group the
components.  :func:`component_permutation` computes that permutation for
any realized graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.convert import AnySparse, as_coo
from repro.sparse.kernels import INDEX_DTYPE


def connected_components(a: AnySparse) -> np.ndarray:
    """Component label of every vertex (labels are 0..k-1, ordered by
    smallest member vertex).

    Treats the graph as undirected (an edge in either direction connects).
    Vectorized label propagation: repeatedly pull the minimum label across
    every edge until a fixed point — O(edges · diameter) work, loop count
    bounded by the diameter, fine for the realized graphs this targets.
    """
    coo = as_coo(a)
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"adjacency matrix must be square, got {coo.shape}")
    n = coo.shape[0]
    labels = np.arange(n, dtype=INDEX_DTYPE)
    rows = np.concatenate([coo.rows, coo.cols])
    cols = np.concatenate([coo.cols, coo.rows])
    while True:
        pulled = labels.copy()
        # pulled[r] = min(pulled[r], labels[c]) over all edges (r, c)
        np.minimum.at(pulled, rows, labels[cols])
        if np.array_equal(pulled, labels):
            break
        labels = pulled
    # Renumber to dense 0..k-1 preserving order of first appearance.
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(INDEX_DTYPE)


def component_permutation(a: AnySparse) -> np.ndarray:
    """Permutation grouping vertices by connected component.

    Returns ``perm`` such that ``a.permuted(perm)`` is block-diagonal with
    one block per component (vertices stably ordered inside each block).
    ``perm[new_index] = old_index``.
    """
    labels = connected_components(a)
    return np.argsort(labels, kind="stable").astype(INDEX_DTYPE)
