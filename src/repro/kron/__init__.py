"""Kronecker product machinery.

Three tiers, matching how the paper uses the operator:

* **dense** (:func:`~repro.semiring.ops.kron_dense`, re-exported here) —
  reference implementation for tiny matrices,
* **sparse** (:func:`~repro.kron.sparse_kron.kron`) — vectorized
  triples-based product used whenever a graph is actually realized,
* **lazy** (:class:`~repro.kron.chain.KroneckerChain`) — a symbolic chain
  of factors whose product is *never* formed; element access, row
  extraction, and degree queries run on mixed-radix index arithmetic
  (:mod:`repro.kron.indexing`), which is what makes 10^30-edge graphs
  analyzable on a laptop (Section VI, Fig. 7).
"""

from repro.semiring.ops import kron_dense
from repro.kron._fast import (
    KERNEL_CHOICES,
    native_available,
    resolve_kernel,
    warmup_native,
)
from repro.kron.sparse_kron import kron, kron_chain
from repro.kron.tiles import kron_tiles, tile_row_ranges
from repro.kron.chain import KroneckerChain
from repro.kron.indexing import MixedRadix
from repro.kron.permute import (
    component_permutation,
    connected_components,
)
from repro.kron.vec import (
    chain_matvec,
    leading_eigenvector_factors,
    power_iteration,
    spectral_radius_estimate,
)

__all__ = [
    "kron",
    "kron_chain",
    "kron_dense",
    "kron_tiles",
    "tile_row_ranges",
    "KERNEL_CHOICES",
    "native_available",
    "resolve_kernel",
    "warmup_native",
    "KroneckerChain",
    "MixedRadix",
    "connected_components",
    "component_permutation",
    "chain_matvec",
    "power_iteration",
    "spectral_radius_estimate",
    "leading_eigenvector_factors",
]
