"""Mixed-radix index arithmetic for Kronecker chains.

A vertex of ``A = A₁ ⊗ ... ⊗ A_N`` is a tuple of constituent vertices;
its flat index is the mixed-radix number whose digits are the constituent
indices with bases ``(m₁, ..., m_N)``, most-significant digit first —
exactly the index formula in the paper's Section II definition.

All arithmetic is Python-int exact, so indices beyond 2⁶⁴ (e.g. the
10³⁰-edge design of Fig. 7, whose vertex count needs 87 bits) work
unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ShapeError


class MixedRadix:
    """Encode/decode flat indices <-> digit tuples for given bases."""

    __slots__ = ("bases", "_weights", "total")

    def __init__(self, bases: Sequence[int]) -> None:
        bases = [int(b) for b in bases]
        if not bases:
            raise ShapeError("MixedRadix needs at least one base")
        if any(b < 1 for b in bases):
            raise ShapeError(f"all bases must be >= 1, got {bases}")
        self.bases: Tuple[int, ...] = tuple(bases)
        # weight of digit k = product of bases to its right
        weights: List[int] = [1] * len(bases)
        for k in range(len(bases) - 2, -1, -1):
            weights[k] = weights[k + 1] * bases[k + 1]
        self._weights = tuple(weights)
        self.total = weights[0] * bases[0]

    def encode(self, digits: Sequence[int]) -> int:
        """Flat index of a digit tuple (most significant first)."""
        if len(digits) != len(self.bases):
            raise ShapeError(f"expected {len(self.bases)} digits, got {len(digits)}")
        flat = 0
        for d, b, w in zip(digits, self.bases, self._weights):
            d = int(d)
            if not 0 <= d < b:
                raise IndexError(f"digit {d} out of range for base {b}")
            flat += d * w
        return flat

    def decode(self, flat: int) -> Tuple[int, ...]:
        """Digit tuple of a flat index."""
        flat = int(flat)
        if not 0 <= flat < self.total:
            raise IndexError(f"index {flat} out of range for total {self.total}")
        digits = []
        for w, b in zip(self._weights, self.bases):
            d, flat = divmod(flat, w)
            digits.append(d)
        return tuple(digits)

    def __len__(self) -> int:
        return len(self.bases)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MixedRadix(bases={self.bases})"
