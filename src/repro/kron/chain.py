"""Lazy Kronecker chains.

:class:`KroneckerChain` represents ``A = A₁ ⊗ ... ⊗ A_N`` symbolically: it
stores only the (tiny) constituent matrices and answers queries about the
product via mixed-radix index arithmetic.  Nothing is materialized until
:meth:`materialize` (or :meth:`split` + the parallel generator) is called,
so a chain describing a 10³⁰-edge graph costs a few kilobytes.
"""

from __future__ import annotations

from math import prod
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.semiring.base import Semiring
from repro.semiring.standard import PLUS_TIMES
from repro.kron.indexing import MixedRadix
from repro.kron.sparse_kron import kron_chain
from repro.sparse.convert import AnySparse, as_coo
from repro.sparse.coo import COOMatrix


class KroneckerChain:
    """A lazy ``⊗``-chain of square sparse factors.

    Parameters
    ----------
    factors:
        Constituent adjacency matrices (any library sparse type or dense
        ndarray).  Each must be square — the chain represents a graph.
    """

    __slots__ = ("factors", "_row_radix", "_col_radix")

    def __init__(self, factors: Sequence[AnySparse]) -> None:
        mats: List[COOMatrix] = [as_coo(f) for f in factors]
        if not mats:
            raise ShapeError("KroneckerChain needs at least one factor")
        for k, m in enumerate(mats):
            if m.shape[0] != m.shape[1]:
                raise ShapeError(f"factor {k} is not square: shape {m.shape}")
        self.factors = tuple(mats)
        self._row_radix = MixedRadix([m.shape[0] for m in mats])
        self._col_radix = MixedRadix([m.shape[1] for m in mats])

    # -- exact product metadata (never materializes) ------------------------
    @property
    def num_factors(self) -> int:
        return len(self.factors)

    @property
    def num_vertices(self) -> int:
        """∏ m_k — exact Python int."""
        return prod(m.shape[0] for m in self.factors)

    @property
    def nnz(self) -> int:
        """∏ nnz(A_k) — exact Python int (the paper's edge count)."""
        return prod(m.nnz for m in self.factors)

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.num_vertices
        return (n, n)

    # -- element & row queries ------------------------------------------------
    def entry(self, i: int, j: int):
        """Value of the product at (i, j) without materializing.

        Decomposes the indices into constituent digits and multiplies the
        factor entries; any zero factor short-circuits.
        """
        di = self._row_radix.decode(i)
        dj = self._col_radix.decode(j)
        value = 1
        for m, a, b in zip(self.factors, di, dj):
            v = m.get(a, b, 0)
            if v == 0:
                return 0
            value *= v
        return value

    def row_nnz_of(self, i: int) -> int:
        """Exact nnz of product row i = ∏ nnz of constituent rows."""
        digits = self._row_radix.decode(i)
        counts = 1
        for m, a in zip(self.factors, digits):
            rn = int(np.count_nonzero(m.rows == a))
            if rn == 0:
                return 0
            counts *= rn
        return counts

    def degree_of(self, i: int) -> int:
        """Degree (row nnz) of vertex i — works at any scale."""
        return self.row_nnz_of(i)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of product row i, materialized.

        Cost is the row's nnz; only call when that is small enough to
        hold (it always is for star chains, whose max degree is ∏ m̂_k of
        a few factors — guard at 10**7 entries).
        """
        digits = self._row_radix.decode(i)
        cols = np.array([0], dtype=object)
        vals = np.array([1], dtype=object)
        size = 1
        for m, a in zip(self.factors, digits):
            sel = m.rows == a
            fc, fv = m.cols[sel], m.vals[sel]
            size *= len(fc)
            if size > 10**7:
                raise MemoryError(f"row {i} has more than 10^7 entries; use row_nnz_of")
            if len(fc) == 0:
                return np.empty(0, dtype=object), np.empty(0, dtype=object)
            width = m.shape[1]
            cols = np.repeat(cols * width, len(fc)) + np.tile(fc.astype(object), len(cols))
            vals = np.repeat(vals, len(fv)) * np.tile(fv.astype(object), len(vals))
        return cols, vals

    # -- composition --------------------------------------------------------------
    def split(self, k: int) -> Tuple["KroneckerChain", "KroneckerChain"]:
        """Split into ``(B, C)`` with ``B = A₁⊗...⊗A_k`` and the rest.

        This is the paper's Section V decomposition ``A = B ⊗ C``.
        """
        if not 1 <= k < self.num_factors:
            raise ShapeError(
                f"split point must be in [1, {self.num_factors - 1}], got {k}"
            )
        return KroneckerChain(self.factors[:k]), KroneckerChain(self.factors[k:])

    def __mul__(self, other: "KroneckerChain") -> "KroneckerChain":
        """Concatenate chains: ``(B * C).materialize() == B ⊗ C``."""
        return KroneckerChain(self.factors + other.factors)

    def __iter__(self) -> Iterator[COOMatrix]:
        return iter(self.factors)

    # -- realization -----------------------------------------------------------------
    def materialize(self, semiring: Semiring = PLUS_TIMES) -> COOMatrix:
        """Form the full product as a canonical COO matrix.

        Refuses products whose nnz exceeds ``5·10^7`` — at that point use
        the parallel generator and stream per-rank blocks instead.
        """
        if self.nnz > 5 * 10**7:
            raise MemoryError(
                f"product has {self.nnz} stored entries; materializing would "
                "exhaust memory — use repro.parallel to generate blocks"
            )
        return kron_chain(self.factors, semiring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = "x".join(str(m.shape[0]) for m in self.factors)
        return f"KroneckerChain({self.num_factors} factors: {sizes}, nnz={self.nnz})"
