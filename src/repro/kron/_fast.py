"""Optional compiled fast path for the generation hot loop.

Two kernels live here, each with a pure-Python body that is
``numba.njit``-compatible as written:

* **expand** — merge-order Kronecker tile expansion.  Because canonical
  COO inputs have unique ``(row, col)`` keys, walking row groups of the
  ``Bp`` slice crossed with row groups of ``C`` (columns ascending within
  each group) emits the product *already in lex order* — byte-identical
  to the NumPy ``repeat``/``tile``/``lexsort`` oracle with no sort at all.
* **encode** — int64 → decimal ASCII TSV serialization, byte-identical
  to the f-string oracle in :mod:`repro.engine.sinks`
  (``f"{r}\\t{c}\\t{v}\\n"``), including negative values.

Gating mirrors :mod:`repro.net.mpi`: importing this module is always
safe (``numba`` is only imported on first kernel use),
:func:`native_available` answers the capability question, and asking
for ``kernel="native"`` on a bare interpreter raises
:class:`~repro.errors.KernelUnavailableError` while ``"auto"`` falls
back to the NumPy oracle.

For environments without numba, setting ``REPRO_NATIVE_ALLOW_PYTHON=1``
runs the *same kernel bodies* un-jitted — slow, but it lets the
byte-identity tests and the engine-level plumbing exercise the native
code path everywhere (the env var crosses process boundaries, so
multiprocessing workers inherit it).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.errors import GenerationError, KernelUnavailableError

KERNEL_CHOICES = ("auto", "numpy", "native")

#: Environment hook: run the native kernel bodies as plain Python when
#: numba is absent (testing/bench aid; see module docstring).
ALLOW_PYTHON_ENV = "REPRO_NATIVE_ALLOW_PYTHON"

# Worst case TSV line: 3 int64 fields (20 chars incl. sign) + 2 tabs +
# newline = 63 bytes; 66 leaves slack so the bound never goes stale.
_MAX_LINE_BYTES = 66

_TEN = np.uint64(10)
_ZERO_U = np.uint64(0)
_ONE_U = np.uint64(1)
_ASCII_ZERO = np.uint8(48)
_MINUS = np.uint8(45)
_TAB = np.uint8(9)
_NEWLINE = np.uint8(10)


def _build_kernels(jit):
    """Construct the kernel pair, optionally jitted.

    The same closure bodies serve both modes: ``jit=None`` returns them
    as plain Python (the ``REPRO_NATIVE_ALLOW_PYTHON`` path), otherwise
    each is wrapped by the provided decorator (``numba.njit``).  Keeping
    one source for both is what makes the un-jitted byte-identity tests
    meaningful evidence about the compiled kernels.
    """
    ten, zero_u, one_u = _TEN, _ZERO_U, _ONE_U
    ascii_zero, minus, tab, newline = _ASCII_ZERO, _MINUS, _TAB, _NEWLINE

    def write_int(out, pos, v):
        # Decimal digits of an int64, byte-identical to str(int(v)).
        # Magnitude math runs in uint64 via -(v + 1) + 1 so INT64_MIN
        # never negates out of range.
        if v < 0:
            out[pos] = minus
            pos += 1
            u = np.uint64(-(v + 1)) + one_u
        else:
            u = np.uint64(v)
        n = 1
        t = u // ten
        while t > zero_u:
            n += 1
            t = t // ten
        end = pos + n
        i = end - 1
        while i >= pos:
            out[i] = np.uint8(u % ten) + ascii_zero
            u = u // ten
            i -= 1
        return end

    if jit is not None:
        write_int = jit(write_int)

    def encode_tsv(rows, cols, vals, out):
        pos = 0
        for i in range(rows.shape[0]):
            pos = write_int(out, pos, rows[i])
            out[pos] = tab
            pos += 1
            pos = write_int(out, pos, cols[i])
            out[pos] = tab
            pos += 1
            pos = write_int(out, pos, vals[i])
            out[pos] = newline
            pos += 1
        return pos

    def expand(a_rows, a_cols, a_vals, b_rows, b_cols, b_vals, nb, mb,
               out_r, out_c, out_v):
        # Merge-order expansion: a-row groups × b-row groups, columns
        # ascending within each group (canonical COO), so `pos` walks
        # the output in exact lex (row, col) order.
        pos = 0
        na = a_rows.shape[0]
        nbe = b_rows.shape[0]
        i = 0
        while i < na:
            i2 = i
            ar = a_rows[i]
            while i2 < na and a_rows[i2] == ar:
                i2 += 1
            j = 0
            while j < nbe:
                j2 = j
                br = b_rows[j]
                while j2 < nbe and b_rows[j2] == br:
                    j2 += 1
                row = ar * nb + br
                for ia in range(i, i2):
                    ac = a_cols[ia] * mb
                    av = a_vals[ia]
                    for jb in range(j, j2):
                        out_r[pos] = row
                        out_c[pos] = ac + b_cols[jb]
                        out_v[pos] = av * b_vals[jb]
                        pos += 1
                j = j2
            i = i2
        return pos

    if jit is not None:
        encode_tsv = jit(encode_tsv)
        expand = jit(expand)
    return expand, encode_tsv


_IMPL: "Optional[Tuple[object, object, bool]]" = None  # (expand, encode, jitted)


def numba_available() -> bool:
    """True when ``numba`` can be imported (without importing it eagerly)."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def python_fallback_allowed() -> bool:
    return os.environ.get(ALLOW_PYTHON_ENV, "") not in ("", "0")


def native_available() -> bool:
    """Can ``kernel="native"`` run here?  (numba, or the env hook.)"""
    return numba_available() or python_fallback_allowed()


def resolve_kernel(kernel: Optional[str]) -> str:
    """Map an ``auto``/``numpy``/``native`` request to a concrete kernel.

    ``"auto"`` (or ``None``) picks ``"native"`` exactly when
    :func:`native_available`; an explicit ``"native"`` on a machine that
    cannot run it raises :class:`KernelUnavailableError` instead of
    silently downgrading.
    """
    if kernel is None or kernel == "auto":
        return "native" if native_available() else "numpy"
    if kernel == "numpy":
        return "numpy"
    if kernel == "native":
        if not native_available():
            raise KernelUnavailableError(
                "kernel='native' requires numba (pip install numba) or the "
                f"{ALLOW_PYTHON_ENV}=1 testing hook; use kernel='auto' to "
                "fall back to the NumPy oracle automatically"
            )
        return "native"
    raise GenerationError(
        f"unknown kernel {kernel!r}; choose one of {KERNEL_CHOICES}"
    )


def _load():
    """Build (and cache) the kernel implementations; raises when gated off."""
    global _IMPL
    if _IMPL is None:
        if numba_available():
            import numba

            expand, encode = _build_kernels(
                numba.njit(cache=True, nogil=True)
            )
            _IMPL = (expand, encode, True)
        elif python_fallback_allowed():
            expand, encode = _build_kernels(None)
            _IMPL = (expand, encode, False)
        else:
            # Same message as the strict resolve_kernel branch.
            resolve_kernel("native")
            raise AssertionError("unreachable")  # pragma: no cover
    return _IMPL


def _reset() -> None:
    """Drop the cached kernels (tests flip the env hook around this)."""
    global _IMPL
    _IMPL = None


def kernels_jitted() -> bool:
    """True when the loaded kernels are numba-compiled (vs. env-hook Python)."""
    return _load()[2]


def expand_tile(
    a_rows: np.ndarray,
    a_cols: np.ndarray,
    a_vals: np.ndarray,
    b_rows: np.ndarray,
    b_cols: np.ndarray,
    b_vals: np.ndarray,
    nb: int,
    mb: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Kron-expand one canonical A-slice against canonical C triples.

    Returns lex-sorted ``(rows, cols, vals)`` — byte-identical to the
    NumPy ``repeat``/``tile``/``lexsort`` path in
    :func:`repro.kron.tiles.kron_tiles`.
    """
    expand, _, _ = _load()
    total = int(a_rows.shape[0]) * int(b_rows.shape[0])
    out_r = np.empty(total, dtype=np.int64)
    out_c = np.empty(total, dtype=np.int64)
    out_v = np.empty(total, dtype=np.int64)
    written = expand(
        np.ascontiguousarray(a_rows, dtype=np.int64),
        np.ascontiguousarray(a_cols, dtype=np.int64),
        np.ascontiguousarray(a_vals, dtype=np.int64),
        np.ascontiguousarray(b_rows, dtype=np.int64),
        np.ascontiguousarray(b_cols, dtype=np.int64),
        np.ascontiguousarray(b_vals, dtype=np.int64),
        np.int64(nb),
        np.int64(mb),
        out_r,
        out_c,
        out_v,
    )
    if int(written) != total:  # defensive: inputs were not canonical
        raise GenerationError(
            f"native expand wrote {int(written)} of {total} entries"
        )
    return out_r, out_c, out_v


def encode_tile_native(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> bytes:
    """TSV-encode a tile, byte-identical to the f-string serializer."""
    _, encode, _ = _load()
    n = int(rows.shape[0])
    if n == 0:
        return b""
    buf = np.empty(n * _MAX_LINE_BYTES, dtype=np.uint8)
    end = encode(
        np.ascontiguousarray(rows, dtype=np.int64),
        np.ascontiguousarray(cols, dtype=np.int64),
        np.ascontiguousarray(vals, dtype=np.int64),
        buf,
    )
    return buf[: int(end)].tobytes()


def warmup_native() -> bool:
    """Compile both kernels now (e.g. in the coordinator before forking
    workers, so children inherit the compiled code).  Returns False when
    the native kernel is unavailable instead of raising."""
    if not native_available():
        return False
    a = np.array([0, 1], dtype=np.int64)
    expand_tile(a, a, a + 1, a, a, a + 1, 2, 2)
    encode_tile_native(a, a, np.array([-1, 7], dtype=np.int64))
    return True
