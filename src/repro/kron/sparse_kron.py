"""Sparse (triples-based) Kronecker product.

For stored entries ``A(ia, ja) = va`` and ``B(ib, jb) = vb``::

    C(ia·nB + ib, ja·mB + jb) = mul(va, vb)

Every output entry comes from exactly one (A-entry, B-entry) pair, so no
coalescing is needed — the kernel is a pure repeat/tile index computation,
O(nnz(A)·nnz(B)) time and space with no Python-level loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.semiring.base import Semiring
from repro.semiring.standard import PLUS_TIMES
from repro.sparse.convert import AnySparse, as_coo
from repro.sparse.coo import COOMatrix
from repro.sparse.kernels import lex_sort_triples


def kron(a: AnySparse, b: AnySparse, semiring: Semiring = PLUS_TIMES) -> COOMatrix:
    """Kronecker product of two sparse matrices under ``semiring``."""
    ca, cb = as_coo(a), as_coo(b)
    na, ma = ca.shape
    nb, mb = cb.shape
    out_shape = (na * nb, ma * mb)
    if ca.nnz == 0 or cb.nnz == 0:
        from repro.sparse.construct import zeros

        return zeros(out_shape, dtype=np.result_type(ca.dtype, cb.dtype))
    # A-major expansion: each A entry is paired with every B entry.
    rows = np.repeat(ca.rows * nb, cb.nnz) + np.tile(cb.rows, ca.nnz)
    cols = np.repeat(ca.cols * mb, cb.nnz) + np.tile(cb.cols, ca.nnz)
    vals = semiring.mul(np.repeat(ca.vals, cb.nnz), np.tile(cb.vals, ca.nnz))
    # Positions are unique; only ordering must be restored for canonicality.
    rows, cols, vals = lex_sort_triples(rows, cols, vals)
    return COOMatrix(out_shape, rows, cols, vals, _canonical=True)


def kron_chain(
    factors: Sequence[AnySparse] | Iterable[AnySparse],
    semiring: Semiring = PLUS_TIMES,
) -> COOMatrix:
    """Left-to-right fold of :func:`kron` over ``factors``.

    Associativity (Section II) makes the fold order irrelevant for the
    result; left-to-right keeps intermediate sizes monotone.
    """
    factors = list(factors)
    if not factors:
        raise ShapeError("kron_chain needs at least one factor")
    acc = as_coo(factors[0])
    for f in factors[1:]:
        acc = kron(acc, f, semiring)
    return acc
