"""Unit tests for the I/O layer."""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.errors import IOFormatError
from repro.io import (
    load_design,
    load_matrix,
    read_rank_files,
    read_tsv_edges,
    save_design,
    save_matrix,
    write_rank_files,
    write_tsv_edges,
)
from repro.parallel import ParallelKroneckerGenerator, VirtualCluster
from repro.sparse import from_dense
from tests.conftest import random_dense


class TestTSV:
    def test_roundtrip(self, tmp_path, rng):
        m = from_dense(random_dense(rng, 6, 6))
        path = tmp_path / "edges.tsv"
        count = write_tsv_edges(path, m)
        assert count == m.nnz
        assert read_tsv_edges(path, m.shape).equal(m)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "e.tsv"
        path.write_text("# header\n0\t1\t1\n\n1\t0\t1\n")
        m = read_tsv_edges(path, (2, 2))
        assert m.nnz == 2

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(IOFormatError):
            read_tsv_edges(path, (2, 2))

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad2.tsv"
        path.write_text("0\tx\t1\n")
        with pytest.raises(IOFormatError):
            read_tsv_edges(path, (2, 2))

    def test_rank_files_roundtrip(self, tmp_path):
        design = PowerLawDesign([3, 4, 2])
        gen = ParallelKroneckerGenerator(design.to_chain(), VirtualCluster(4))
        blocks = gen.generate_blocks()
        paths = write_rank_files(tmp_path, blocks)
        assert len(paths) == 4
        merged = read_rank_files(tmp_path, (design.num_vertices, design.num_vertices))
        assert merged.equal(design.to_chain().materialize())

    def test_rank_files_missing(self, tmp_path):
        with pytest.raises(IOFormatError):
            read_rank_files(tmp_path, (2, 2))


class TestNPZ:
    def test_matrix_roundtrip(self, tmp_path, rng):
        m = from_dense(random_dense(rng, 8, 5))
        path = tmp_path / "m.npz"
        save_matrix(path, m)
        assert load_matrix(path).equal(m)

    def test_corrupt_npz_missing_field(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, rows=np.array([0]))
        with pytest.raises(IOFormatError):
            load_matrix(path)


class TestDesignJSON:
    def test_roundtrip(self, tmp_path):
        design = PowerLawDesign([3, 4, 5], "center")
        path = tmp_path / "design.json"
        save_design(path, design)
        loaded = load_design(path)
        assert loaded.star_sizes == design.star_sizes
        assert loaded.self_loop == design.self_loop
        assert loaded.num_edges == design.num_edges

    def test_tampered_counts_detected(self, tmp_path):
        design = PowerLawDesign([3, 4])
        path = tmp_path / "design.json"
        save_design(path, design)
        text = path.read_text().replace(str(design.num_edges), str(design.num_edges + 1))
        path.write_text(text)
        with pytest.raises(IOFormatError):
            load_design(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{not json")
        with pytest.raises(IOFormatError):
            load_design(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "missing.json"
        path.write_text('{"self_loop": "none"}')
        with pytest.raises(IOFormatError):
            load_design(path)
