"""Unit tests for DegreeDistribution."""

import pytest

from repro.design import DegreeDistribution
from repro.errors import DesignError


class TestConstruction:
    def test_from_mapping(self):
        d = DegreeDistribution({3: 2, 1: 5})
        assert d.to_dict() == {1: 5, 3: 2}

    def test_from_pairs_accumulates(self):
        d = DegreeDistribution([(1, 2), (1, 3)])
        assert d[1] == 5

    def test_zero_counts_dropped(self):
        d = DegreeDistribution({1: 0, 2: 3})
        assert len(d) == 1

    def test_negative_degree_rejected(self):
        with pytest.raises(DesignError):
            DegreeDistribution({-1: 2})

    def test_negative_count_rejected(self):
        with pytest.raises(DesignError):
            DegreeDistribution({1: -2})

    def test_from_star(self):
        assert DegreeDistribution.from_star(5).to_dict() == {1: 5, 5: 1}

    def test_from_star_m_hat_one(self):
        assert DegreeDistribution.from_star(1).to_dict() == {1: 2}

    def test_from_degree_vector(self):
        d = DegreeDistribution.from_degree_vector([2, 2, 7])
        assert d.to_dict() == {2: 2, 7: 1}

    def test_power_law_curve(self):
        d = DegreeDistribution.power_law(12, 1.0, 12)
        assert d[1] == 12 and d[12] == 1
        assert d[5] == round(12 / 5)


class TestAggregates:
    def test_totals(self):
        d = DegreeDistribution({1: 15, 3: 5, 5: 3, 15: 1})
        assert d.num_vertices() == 24
        assert d.total_nnz() == 15 + 15 + 15 + 15

    def test_min_max(self):
        d = DegreeDistribution({2: 1, 9: 4})
        assert d.min_degree() == 2
        assert d.max_degree() == 9

    def test_empty_min_max_raise(self):
        with pytest.raises(DesignError):
            DegreeDistribution().max_degree()
        with pytest.raises(DesignError):
            DegreeDistribution().min_degree()


class TestKron:
    def test_two_stars(self):
        a = DegreeDistribution.from_star(5)
        b = DegreeDistribution.from_star(3)
        assert a.kron(b).to_dict() == {1: 15, 3: 5, 5: 3, 15: 1}

    def test_kron_totals_multiply(self):
        a = DegreeDistribution({1: 3, 4: 2})
        b = DegreeDistribution({2: 5, 3: 1})
        c = a.kron(b)
        assert c.num_vertices() == a.num_vertices() * b.num_vertices()
        assert c.total_nnz() == a.total_nnz() * b.total_nnz()

    def test_kron_colliding_degrees_accumulate(self):
        a = DegreeDistribution({1: 1, 2: 1})
        b = DegreeDistribution({2: 1, 4: 1})
        # products: 2, 4, 4, 8
        assert a.kron(b).to_dict() == {2: 1, 4: 2, 8: 1}

    def test_matmul_operator(self):
        a = DegreeDistribution.from_star(2)
        assert (a @ a).to_dict() == a.kron(a).to_dict()

    def test_kron_all(self):
        parts = [DegreeDistribution.from_star(m) for m in (2, 3, 5)]
        folded = DegreeDistribution.kron_all(parts)
        manual = parts[0].kron(parts[1]).kron(parts[2])
        assert folded == manual

    def test_kron_all_empty_rejected(self):
        with pytest.raises(DesignError):
            DegreeDistribution.kron_all([])

    def test_kron_commutative(self):
        a = DegreeDistribution({1: 2, 3: 1})
        b = DegreeDistribution({2: 4, 5: 2})
        assert a.kron(b) == b.kron(a)


class TestAdjustments:
    def test_shift_vertex(self):
        d = DegreeDistribution({5: 2}).shift_vertex(5, 4)
        assert d.to_dict() == {4: 1, 5: 1}

    def test_shift_removes_empty_bucket(self):
        d = DegreeDistribution({5: 1}).shift_vertex(5, 4)
        assert d.to_dict() == {4: 1}

    def test_shift_missing_degree_rejected(self):
        with pytest.raises(DesignError):
            DegreeDistribution({5: 1}).shift_vertex(6, 5)

    def test_scaled(self):
        d = DegreeDistribution({1: 2, 3: 1}).scaled(4)
        assert d.to_dict() == {1: 8, 3: 4}


class TestPowerLawStructure:
    def test_exact_power_law_true(self):
        assert DegreeDistribution({1: 15, 3: 5, 5: 3, 15: 1}).is_exact_power_law()

    def test_exact_power_law_false(self):
        assert not DegreeDistribution({1: 15, 3: 4}).is_exact_power_law()

    def test_alpha_of_star(self):
        assert DegreeDistribution.from_star(9).power_law_alpha() == pytest.approx(1.0)

    def test_alpha_needs_two_degrees(self):
        with pytest.raises(DesignError):
            DegreeDistribution({3: 5}).power_law_alpha()

    def test_fit_alpha_recovers_exact_law(self):
        d = DegreeDistribution({1: 16, 2: 8, 4: 4, 8: 2, 16: 1})
        alpha, coeff = d.fit_alpha()
        assert alpha == pytest.approx(1.0)
        assert coeff == pytest.approx(16.0)

    def test_fit_alpha_needs_points(self):
        with pytest.raises(DesignError):
            DegreeDistribution({2: 3}).fit_alpha()


class TestPresentation:
    def test_series_sorted(self):
        ds, cs = DegreeDistribution({5: 1, 1: 3}).series()
        assert ds == [1, 5] and cs == [3, 1]

    def test_log_binning_groups(self):
        d = DegreeDistribution({1: 10, 2: 5, 3: 4, 4: 2, 7: 1})
        bins = d.log_binned(base=2.0)
        assert bins[(1, 2)] == 10
        assert bins[(2, 4)] == 9
        assert bins[(4, 8)] == 3

    def test_log_binning_bad_base(self):
        with pytest.raises(DesignError):
            DegreeDistribution({1: 1}).log_binned(base=1.0)

    def test_equality_with_dict(self):
        assert DegreeDistribution({1: 2}) == {1: 2}

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(DegreeDistribution({1: 1}))
