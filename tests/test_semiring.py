"""Unit tests for the semiring layer."""

import numpy as np
import pytest

from repro.errors import SemiringError, ShapeError
from repro.semiring import (
    BOOL_OR_AND,
    MAX_MIN,
    MAX_PLUS,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    ewise_add,
    ewise_mult,
    get_semiring,
    kron_dense,
    list_semirings,
    mxm,
    reduce_all,
    register_semiring,
)


class TestAxioms:
    @pytest.mark.parametrize(
        "sr", [PLUS_TIMES, BOOL_OR_AND, MIN_PLUS, MAX_PLUS, MAX_MIN], ids=lambda s: s.name
    )
    def test_standard_semirings_satisfy_axioms(self, sr):
        sr.check_axioms()

    def test_broken_semiring_detected(self):
        bad = Semiring("bad", add=np.subtract, mul=np.multiply, zero=0, one=1)
        with pytest.raises(SemiringError):
            bad.check_axioms()

    def test_wrong_identity_detected(self):
        bad = Semiring("bad2", add=np.add, mul=np.multiply, zero=1, one=1)
        with pytest.raises(SemiringError):
            bad.check_axioms()

    def test_empty_name_rejected(self):
        with pytest.raises(SemiringError):
            Semiring("", add=np.add, mul=np.multiply, zero=0, one=1)


class TestRegistry:
    def test_lookup(self):
        assert get_semiring("plus_times") is PLUS_TIMES

    def test_unknown_name(self):
        with pytest.raises(SemiringError):
            get_semiring("no_such_semiring")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SemiringError):
            register_semiring(Semiring("plus_times", np.add, np.multiply, 0, 1))

    def test_listing_contains_standards(self):
        names = list_semirings()
        assert {"plus_times", "bool_or_and", "min_plus", "max_plus", "max_min"} <= set(names)


class TestAddReduce:
    def test_empty_reduction_gives_zero(self):
        assert MIN_PLUS.add_reduce(np.empty(0)) == np.inf

    def test_axis_reduction(self):
        a = np.array([[1.0, 5.0], [2.0, 3.0]])
        np.testing.assert_array_equal(MIN_PLUS.add_reduce(a, axis=0), [1.0, 3.0])

    def test_full_reduction(self):
        assert PLUS_TIMES.add_reduce(np.arange(5)) == 10

    def test_generic_callable_add(self):
        # A non-ufunc add exercises the Python fold fallback.
        sr = Semiring("lambda_plus", add=lambda a, b: a + b, mul=np.multiply, zero=0, one=1)
        assert sr.add_reduce(np.array([1, 2, 3])) == 6
        np.testing.assert_array_equal(
            sr.add_reduce(np.array([[1, 2], [3, 4]]), axis=0), [4, 6]
        )


class TestDenseOps:
    def test_mxm_plus_times(self, rng):
        A = rng.integers(0, 4, (3, 4))
        B = rng.integers(0, 4, (4, 5))
        np.testing.assert_array_equal(mxm(A, B), A @ B)

    def test_mxm_min_plus_shortest_paths(self):
        inf = np.inf
        D = np.array([[0, 2, inf], [inf, 0, 3], [1, inf, 0]])
        out = mxm(D, D, MIN_PLUS)
        expected = np.array(
            [[min(D[i, k] + D[k, j] for k in range(3)) for j in range(3)] for i in range(3)]
        )
        np.testing.assert_array_equal(out, expected)

    def test_mxm_max_min_widest_paths(self):
        inf = np.inf
        W = np.array([[inf, 4.0, 1.0], [-inf, inf, 2.0], [-inf, -inf, inf]])
        out = mxm(W, W, MAX_MIN)
        # Widest 2-hop width 0->2 is max(min(4,2), min(1,inf)) = 2.
        assert out[0, 2] == 2.0

    def test_mxm_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mxm(np.eye(2), np.eye(3))

    def test_mxm_rejects_1d(self):
        with pytest.raises(ShapeError):
            mxm(np.arange(3), np.eye(3))

    def test_ewise_ops(self, rng):
        A = rng.integers(0, 4, (3, 3))
        B = rng.integers(0, 4, (3, 3))
        np.testing.assert_array_equal(ewise_add(A, B), A + B)
        np.testing.assert_array_equal(ewise_mult(A, B), A * B)

    def test_ewise_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ewise_add(np.eye(2), np.eye(3))

    def test_kron_dense_matches_numpy(self, rng):
        A = rng.integers(0, 3, (3, 2))
        B = rng.integers(0, 3, (2, 4))
        np.testing.assert_array_equal(kron_dense(A, B), np.kron(A, B))

    def test_kron_dense_boolean(self):
        A = np.array([[True, False], [False, True]])
        B = np.array([[True], [True]])
        out = kron_dense(A, B, BOOL_OR_AND)
        np.testing.assert_array_equal(out, np.kron(A, B).astype(bool))

    def test_kron_dense_min_plus_adds_weights(self):
        # Over min-plus, the "product" of entries is their sum.
        A = np.array([[1.0]])
        B = np.array([[2.0, 3.0]])
        np.testing.assert_array_equal(kron_dense(A, B, MIN_PLUS), [[3.0, 4.0]])

    def test_reduce_all(self, rng):
        A = rng.integers(0, 5, (4, 4))
        assert reduce_all(A) == A.sum()

    def test_mixed_product_identity_all_semirings(self, rng):
        # (A kron B)(C kron D) == (AC) kron (BD) over several semirings.
        for sr in (PLUS_TIMES, BOOL_OR_AND, MIN_PLUS, MAX_PLUS):
            if sr.dtype == np.dtype(bool):
                mk = lambda: rng.random((2, 2)) < 0.5
            elif np.issubdtype(sr.dtype, np.floating):
                mk = lambda: np.where(rng.random((2, 2)) < 0.6, rng.integers(0, 5, (2, 2)).astype(float), sr.zero)
            else:
                mk = lambda: rng.integers(0, 3, (2, 2))
            A, B, C, D = mk(), mk(), mk(), mk()
            lhs = mxm(kron_dense(A, B, sr), kron_dense(C, D, sr), sr)
            rhs = kron_dense(mxm(A, C, sr), mxm(B, D, sr), sr)
            np.testing.assert_array_equal(lhs, rhs)
