"""Unit tests for exact walk counts."""

import numpy as np
import pytest

from repro.design import (
    PowerLawDesign,
    closed_walks,
    design_spectrum,
    total_walks,
    triangle_count_raw,
    walk_profile,
)
from repro.design.walks import constituent_walk_factors, star_walk_factors
from repro.errors import DesignError
from repro.graphs import StarGraph, star_adjacency

FIG7 = [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]


class TestStarWalkFactors:
    @pytest.mark.parametrize("m_hat", [1, 2, 3, 7])
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 5])
    def test_matches_dense_power(self, m_hat, loop, k):
        star = StarGraph(m_hat, loop)
        dense = star.adjacency().to_dense().astype(np.int64)
        ak = np.linalg.matrix_power(dense, k)
        closed, total = star_walk_factors(star, k)
        assert closed == int(np.trace(ak))
        assert total == int(ak.sum())

    def test_quotient_independent_of_m_hat_cost(self):
        # The whole point: m̂ = 14641 costs the same as m̂ = 3.
        import time

        t0 = time.perf_counter()
        star_walk_factors(StarGraph(14641, "leaf"), 50)
        assert time.perf_counter() - t0 < 0.1

    def test_negative_k_rejected(self):
        with pytest.raises(DesignError):
            star_walk_factors(StarGraph(3), -1)


class TestGenericConstituentFactors:
    def test_matches_star_closed_form(self):
        for k in range(5):
            generic = constituent_walk_factors(star_adjacency(4, "center"), k)
            assert generic == star_walk_factors(StarGraph(4, "center"), k)


class TestDesignWalks:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_matches_dense_power_of_raw_product(self, loop):
        design = PowerLawDesign([3, 4, 2], loop)
        raw = design.to_chain().materialize().to_dense().astype(np.int64)
        for k in range(6):
            ak = np.linalg.matrix_power(raw, k)
            assert closed_walks(design, k) == int(np.trace(ak)), (loop, k)
            assert total_walks(design, k) == int(ak.sum()), (loop, k)

    def test_known_identities(self):
        design = PowerLawDesign([3, 4, 5], "center")
        profile = walk_profile(design, 3)
        assert profile[0] == (design.num_vertices, design.num_vertices)
        assert profile[1][0] == 1  # exactly one raw self-loop
        assert profile[1][1] == design.raw_nnz
        assert profile[2][0] == design.raw_nnz  # symmetric 0/1: tr A² = nnz
        assert profile[3][0] == triangle_count_raw(design.stars)

    def test_agrees_with_spectrum_moments(self):
        design = PowerLawDesign([3, 4, 2], "leaf")
        spectrum = design_spectrum(design)
        for k in range(1, 6):
            walks = closed_walks(design, k)
            assert spectrum.moment(k) == pytest.approx(walks, rel=1e-9, abs=1e-6)

    def test_fig7_scale_instant_and_exact(self):
        import time

        design = PowerLawDesign(FIG7, "leaf")
        t0 = time.perf_counter()
        w2 = closed_walks(design, 2)
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0
        assert w2 == design.raw_nnz == design.num_edges + 1

    def test_walk_counts_monotone_in_k_for_connected_designs(self):
        design = PowerLawDesign([3, 4], "center")
        totals = [total_walks(design, k) for k in range(1, 6)]
        assert totals == sorted(totals)

    def test_profile_validates_bounds(self):
        with pytest.raises(DesignError):
            walk_profile(PowerLawDesign([3]), -1)
