"""Unit tests for the parallel generation subsystem."""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.errors import PartitionError
from repro.graphs import star_adjacency
from repro.kron import KroneckerChain
from repro.parallel import (
    MultiprocessingBackend,
    ParallelKroneckerGenerator,
    SerialBackend,
    VirtualCluster,
    choose_split,
    partition_bc,
)
from repro.parallel.generator import generate_design_parallel
from repro.parallel.partition import partition_b_triples
from repro.validate import audit_partition


def chain345():
    return KroneckerChain([star_adjacency(3), star_adjacency(4), star_adjacency(5)])


class TestVirtualCluster:
    def test_ranks_iterable(self):
        assert list(VirtualCluster(3).ranks) == [0, 1, 2]

    def test_rejects_zero_ranks(self):
        with pytest.raises(PartitionError):
            VirtualCluster(0)

    def test_rejects_zero_memory(self):
        with pytest.raises(PartitionError):
            VirtualCluster(2, memory_entries=0)


class TestChooseSplit:
    def test_prefers_larger_b(self):
        chain = chain345()
        k = choose_split(chain, VirtualCluster(2, memory_entries=10**6))
        # nnz: 6, 8, 10 -> prefix nnz 6, 48; both fit, so k=2 maximizes B.
        assert k == 2

    def test_respects_budget(self):
        chain = chain345()
        # Budget 10 forbids nnz(B)=48, so k=1 (B=6, C=80)... but C must
        # also fit; with budget 10 C never fits -> error.
        with pytest.raises(PartitionError):
            choose_split(chain, VirtualCluster(2, memory_entries=10))

    def test_requires_two_factors(self):
        with pytest.raises(PartitionError):
            choose_split(KroneckerChain([star_adjacency(3)]), VirtualCluster(1))

    def test_requires_enough_triples_for_ranks(self):
        chain = chain345()
        # 500 ranks > any prefix nnz -> infeasible.
        with pytest.raises(PartitionError):
            choose_split(chain, VirtualCluster(500, memory_entries=10**6))


class TestPartitionTriples:
    def test_balance_exact_when_divisible(self):
        b = star_adjacency(5)  # nnz 10
        parts = partition_b_triples(b, 5)
        assert all(p.nnz == 2 for p in parts)

    def test_balance_within_one_otherwise(self):
        b = star_adjacency(5)  # nnz 10
        parts = partition_b_triples(b, 3)
        counts = sorted(p.nnz for p in parts)
        assert sum(counts) == 10
        assert counts[-1] - counts[0] <= 1

    def test_union_covers_b(self):
        b = star_adjacency(6)
        parts = partition_b_triples(b, 4)
        got = set()
        for p in parts:
            for r, c, v in p.b_local:
                got.add((r, c + p.col_base, v))
        expected = {(r, c, v) for r, c, v in b}
        assert got == expected

    def test_more_ranks_than_triples_rejected(self):
        with pytest.raises(PartitionError):
            partition_b_triples(star_adjacency(2), 50)

    def test_col_rebase_starts_at_zero(self):
        parts = partition_b_triples(star_adjacency(5), 2)
        for p in parts:
            assert p.b_local.cols.min() == 0


class TestPartitionPlan:
    def test_plan_balance(self):
        plan = partition_bc(chain345(), VirtualCluster(4, memory_entries=10**6))
        lo, hi = plan.balance()
        assert hi - lo <= 1

    def test_explicit_split_index(self):
        plan = partition_bc(
            chain345(), VirtualCluster(2, memory_entries=10**6), split_index=1
        )
        assert plan.split_index == 1
        assert plan.b_chain.num_factors == 1

    def test_explicit_split_over_budget_rejected(self):
        with pytest.raises(PartitionError):
            partition_bc(chain345(), VirtualCluster(2, memory_entries=20), split_index=2)


class TestGenerator:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 7, 16])
    def test_assembled_equals_direct(self, n_ranks):
        chain = chain345()
        gen = ParallelKroneckerGenerator(chain, VirtualCluster(n_ranks))
        assert gen.assemble().equal(chain.materialize())

    def test_block_nnz_sums_to_total(self):
        chain = chain345()
        gen = ParallelKroneckerGenerator(chain, VirtualCluster(5))
        blocks = gen.generate_blocks()
        assert sum(b.nnz for b in blocks) == chain.nnz

    def test_partition_audit_passes(self):
        chain = chain345()
        gen = ParallelKroneckerGenerator(chain, VirtualCluster(6))
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks, chain.nnz)
        assert audit.complete
        assert audit.balanced

    def test_generate_graph_removes_loop(self):
        design = PowerLawDesign([3, 4], "center")
        gen = ParallelKroneckerGenerator(design.to_chain(), VirtualCluster(3))
        g = gen.generate_graph(remove_loop_at=design.loop_vertex)
        assert g.num_self_loops() == 0
        assert g.num_edges == design.num_edges

    def test_edges_per_second_positive(self):
        gen = ParallelKroneckerGenerator(chain345(), VirtualCluster(2))
        blocks = gen.generate_blocks()
        assert gen.edges_per_second(blocks) > 0

    def test_edges_per_second_clamps_zero_elapsed(self):
        # Tiny designs on fast machines can legitimately measure 0.0 at
        # clock resolution; the rate must clamp, not raise.
        from dataclasses import replace

        gen = ParallelKroneckerGenerator(chain345(), VirtualCluster(2))
        blocks = [replace(b, elapsed_s=0.0) for b in gen.generate_blocks()]
        rate = gen.edges_per_second(blocks)
        total = sum(b.nnz for b in blocks)
        assert rate == pytest.approx(total / 1e-9)

    def test_edges_per_second_rejects_no_blocks(self):
        from repro.errors import GenerationError

        gen = ParallelKroneckerGenerator(chain345(), VirtualCluster(2))
        with pytest.raises(GenerationError):
            gen.edges_per_second([])

    def test_backend_accepted_by_name(self):
        chain = chain345()
        gen = ParallelKroneckerGenerator(chain, VirtualCluster(3), backend="thread")
        assert gen.backend.name == "thread"
        assert gen.assemble().equal(chain.materialize())

    def test_helper_matches_serial_realization(self):
        for loop in (None, "center", "leaf"):
            design = PowerLawDesign([3, 2, 4], loop)
            g = generate_design_parallel(design, 5)
            assert g == design.realize()

    def test_helper_accepts_backend_name(self):
        design = PowerLawDesign([3, 4], "center")
        g = generate_design_parallel(design, 3, backend="thread")
        assert g == design.realize()

    def test_helper_memory_entries_deprecated(self):
        design = PowerLawDesign([3, 4], "center")
        with pytest.warns(DeprecationWarning, match="memory_budget_entries"):
            g = generate_design_parallel(design, 2, memory_entries=10**6)
        assert g == design.realize()

    def test_helper_memory_budget_entries_no_warning(self):
        import warnings

        design = PowerLawDesign([3, 4], "center")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            g = generate_design_parallel(design, 2, memory_budget_entries=10**6)
        assert g == design.realize()


class TestBackends:
    def test_serial_map(self):
        assert SerialBackend().map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_multiprocessing_map(self):
        backend = MultiprocessingBackend(processes=2)
        assert backend.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_multiprocessing_empty(self):
        assert MultiprocessingBackend(processes=2).map(_square, []) == []

    def test_multiprocessing_generator_end_to_end(self):
        chain = chain345()
        gen = ParallelKroneckerGenerator(
            chain, VirtualCluster(4), backend=MultiprocessingBackend(processes=2)
        )
        assert gen.assemble().equal(chain.materialize())


def _square(x):
    return x * x


class TestScaling:
    def test_study_rows_and_linearity(self):
        from repro.parallel.scaling import run_scaling_study

        chain = KroneckerChain(
            [star_adjacency(9), star_adjacency(16), star_adjacency(5)]
        )
        study = run_scaling_study(chain, [1, 2, 4])
        rows = study.rows()
        assert [r["cores"] for r in rows] == [1, 2, 4]
        assert all(r["edges"] == chain.nnz for r in rows)
        assert all(r["rate_edges_per_s"] > 0 for r in rows)

    def test_extrapolate_rate(self):
        from repro.parallel.scaling import extrapolate_rate

        assert extrapolate_rate(1000, 0.5, 10) == pytest.approx(20000.0)

    def test_extrapolate_rejects_zero_time(self):
        from repro.errors import GenerationError
        from repro.parallel.scaling import extrapolate_rate

        with pytest.raises(GenerationError):
            extrapolate_rate(10, 0.0, 2)

    def test_linearity_needs_points(self):
        from repro.errors import GenerationError
        from repro.parallel.scaling import ScalingStudy

        with pytest.raises(GenerationError):
            ScalingStudy().is_linear()
