"""Unit tests for exact joint degree distributions and assortativity."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.design import (
    JointDegreeDistribution,
    PowerLawDesign,
    design_assortativity,
    joint_degree_distribution,
    star_joint,
)
from repro.errors import DesignError
from repro.graphs import Graph, StarGraph


def measured_joint(graph: Graph) -> dict:
    degrees = graph.degree_vector()
    counts: Counter = Counter()
    for r, c, _ in graph.adjacency:
        counts[(int(degrees[r]), int(degrees[c]))] += 1
    return dict(counts)


class TestJointClass:
    def test_totals(self):
        j = JointDegreeDistribution({(1, 2): 3, (2, 1): 3})
        assert j.total_edges() == 6
        assert j.is_symmetric()

    def test_asymmetric_detected(self):
        assert not JointDegreeDistribution({(1, 2): 3}).is_symmetric()

    def test_kron_pairs_multiply(self):
        a = JointDegreeDistribution({(2, 1): 1})
        b = JointDegreeDistribution({(3, 5): 4})
        assert a.kron(b).to_dict() == {(6, 5): 4}

    def test_rejects_degenerate(self):
        with pytest.raises(DesignError):
            JointDegreeDistribution({(0, 1): 1})

    def test_shift_pairs(self):
        j = JointDegreeDistribution({(3, 3): 2})
        out = j.shift_pairs({(3, 3): -1, (2, 3): 1})
        assert out.to_dict() == {(2, 3): 1, (3, 3): 1}

    def test_shift_negative_rejected(self):
        with pytest.raises(DesignError):
            JointDegreeDistribution({(3, 3): 1}).shift_pairs({(3, 3): -2})

    def test_blowup_guard(self):
        wide = JointDegreeDistribution(
            {(d, d + 1): 1 for d in range(1, 1001)}
        )
        with pytest.raises(DesignError):
            JointDegreeDistribution.kron_all([wide] * 4, max_pairs=10_000)


class TestStarJoint:
    @pytest.mark.parametrize("m_hat", [1, 2, 3, 7])
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_matches_measured_star(self, m_hat, loop):
        star = StarGraph(m_hat, loop) if loop else StarGraph(m_hat)
        joint = star_joint(star)
        assert joint == measured_joint(Graph(star.adjacency()))

    def test_total_is_nnz(self):
        star = StarGraph(5, "center")
        assert star_joint(star).total_edges() == star.nnz


class TestDesignJoint:
    @pytest.mark.parametrize(
        "sizes,loop",
        [
            ([5, 3], None),
            ([5, 3], "center"),
            ([5, 3], "leaf"),
            ([3, 4, 2], "center"),
            ([2, 3, 4], "leaf"),  # regression: m̂=2 degree collision
            ([2, 2, 3], "leaf"),
            ([1, 3], "center"),
        ],
    )
    def test_matches_realized(self, sizes, loop):
        design = PowerLawDesign(sizes, loop)
        assert joint_degree_distribution(design) == measured_joint(design.realize())

    def test_totals_reconcile(self):
        design = PowerLawDesign([3, 4, 5], "center")
        assert joint_degree_distribution(design).total_edges() == design.num_edges

    def test_symmetry(self):
        design = PowerLawDesign([3, 4], "leaf")
        assert joint_degree_distribution(design).is_symmetric()

    def test_fig4_scale_feasible(self):
        design = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256], "center")
        joint = joint_degree_distribution(design)
        assert joint.total_edges() == 1_853_002_140_758

    def test_fig7_scale_guarded(self):
        design = PowerLawDesign(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
        )
        with pytest.raises(DesignError):
            joint_degree_distribution(design)


class TestAssortativity:
    @pytest.mark.parametrize(
        "sizes,loop",
        [([5, 3], None), ([3, 4, 2], "center"), ([2, 3, 4], "leaf")],
    )
    def test_matches_networkx(self, sizes, loop):
        import networkx as nx

        design = PowerLawDesign(sizes, loop)
        graph = design.realize()
        G = nx.Graph()
        G.add_nodes_from(range(graph.num_vertices))
        for r, c, _ in graph.adjacency:
            if r < c:
                G.add_edge(int(r), int(c))
        ours = float(design_assortativity(design))
        theirs = nx.degree_assortativity_coefficient(G)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_star_chains_are_disassortative(self):
        # Hubs connect to leaves: strong negative correlation.
        assert design_assortativity(PowerLawDesign([5, 3])) < Fraction(-1, 2)

    def test_exact_rational_when_variance_square(self):
        value = design_assortativity(PowerLawDesign([5, 3]))
        assert isinstance(value, Fraction)
        assert -1 <= value <= 1

    def test_degenerate_rejected(self):
        # K2-chain: every endpoint degree 1 -> zero variance.
        with pytest.raises(DesignError):
            design_assortativity(PowerLawDesign([1, 1]))

    def test_trillion_edge_assortativity(self):
        design = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256], "center")
        value = design_assortativity(design)
        assert -1 <= value < 0  # power-law hub graphs are disassortative
