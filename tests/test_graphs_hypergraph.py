"""Unit tests for multi-graph / hyper-graph incidence support."""

import numpy as np
import pytest

from repro.errors import DesignError, ShapeError
from repro.graphs import (
    adjacency_from_incidence,
    hyperedge_sizes,
    hypergraph_clique_expansion,
    hypergraph_incidence,
    multigraph_adjacency,
    multigraph_incidence,
    vertex_hyperdegrees,
)
from repro.kron import kron


class TestMultigraph:
    def test_multiplicity_in_adjacency(self):
        eout, ein = multigraph_incidence(3, [(0, 1), (0, 1), (1, 2)])
        a = multigraph_adjacency(eout, ein)
        assert a.get(0, 1) == 2
        assert a.get(1, 2) == 1

    def test_one_row_per_occurrence(self):
        eout, _ = multigraph_incidence(2, [(0, 1)] * 4)
        assert eout.shape == (4, 2)
        np.testing.assert_array_equal(eout.row_nnz(), [1, 1, 1, 1])

    def test_empty_edge_list(self):
        eout, ein = multigraph_incidence(3, [])
        assert eout.shape == (0, 3)
        assert multigraph_adjacency(eout, ein).nnz == 0

    def test_rejects_bad_endpoint(self):
        with pytest.raises(DesignError):
            multigraph_incidence(2, [(0, 5)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            multigraph_incidence(3, np.array([[0, 1, 2]]))

    def test_kron_of_multigraph_incidence(self):
        # Section IV-D composes incidence matrices with kron; the
        # projection of the product equals the kron of the projections.
        eo1, ei1 = multigraph_incidence(2, [(0, 1), (0, 1)])
        eo2, ei2 = multigraph_incidence(2, [(1, 0)])
        lhs = adjacency_from_incidence(kron(eo1, eo2), kron(ei1, ei2))
        rhs = kron(
            adjacency_from_incidence(eo1, ei1), adjacency_from_incidence(eo2, ei2)
        )
        assert lhs.equal(rhs)


class TestHypergraph:
    def test_incidence_shape(self):
        e = hypergraph_incidence(5, [[0, 1, 2], [2, 3]])
        assert e.shape == (2, 5)
        np.testing.assert_array_equal(hyperedge_sizes(e), [3, 2])
        np.testing.assert_array_equal(vertex_hyperdegrees(e), [1, 1, 2, 1, 0])

    def test_duplicate_members_deduped(self):
        e = hypergraph_incidence(3, [[0, 0, 1]])
        assert hyperedge_sizes(e).tolist() == [2]

    def test_rejects_empty_hyperedge(self):
        with pytest.raises(DesignError):
            hypergraph_incidence(3, [[]])

    def test_rejects_out_of_range_member(self):
        with pytest.raises(DesignError):
            hypergraph_incidence(2, [[0, 7]])

    def test_clique_expansion_counts_comemberships(self):
        e = hypergraph_incidence(4, [[0, 1, 2], [1, 2, 3]])
        a = hypergraph_clique_expansion(e)
        assert a.get(1, 2) == 2  # together in both hyper-edges
        assert a.get(0, 3) == 0
        assert a.get(0, 0) == 0  # diagonal dropped

    def test_clique_expansion_with_loops_has_hyperdegrees(self):
        e = hypergraph_incidence(3, [[0, 1], [0, 2]])
        a = hypergraph_clique_expansion(e, include_loops=True)
        assert a.get(0, 0) == 2

    def test_pairwise_hypergraph_equals_plain_graph(self):
        # Hyper-edges of size 2 are ordinary edges: expansion == adjacency.
        from repro.sparse import from_edges

        edges = [(0, 1), (1, 2), (0, 2)]
        e = hypergraph_incidence(3, [list(p) for p in edges])
        assert hypergraph_clique_expansion(e).equal(from_edges(3, edges))
