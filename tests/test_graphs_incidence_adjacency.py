"""Unit tests for incidence matrices, the Graph wrapper, and degree maps."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graphs import (
    Graph,
    adjacency_from_incidence,
    complete_graph,
    cycle_graph,
    degree_distribution_of,
    degree_map_from_vector,
    distribution_total_nnz,
    distribution_total_vertices,
    incidence_matrices,
    star_adjacency,
)
from repro.kron import kron
from repro.sparse import from_dense, from_edges, zeros
from tests.conftest import random_dense


class TestIncidence:
    @pytest.mark.parametrize(
        "matrix",
        [star_adjacency(4), cycle_graph(5), complete_graph(4), star_adjacency(3, "center")],
        ids=["star", "cycle", "complete", "star-loop"],
    )
    def test_reconstruction(self, matrix):
        eout, ein = incidence_matrices(matrix)
        assert adjacency_from_incidence(eout, ein).equal(matrix)

    def test_edge_rows_one_hot(self):
        eout, ein = incidence_matrices(star_adjacency(3))
        np.testing.assert_array_equal(eout.row_nnz(), np.ones(6, dtype=np.int64))
        np.testing.assert_array_equal(ein.row_nnz(), np.ones(6, dtype=np.int64))

    def test_kronecker_incidence_construction(self):
        # Paper Section IV-D: Eout = kron(Ek,out), Ein = kron(Ek,in)
        # reconstructs the Kronecker product adjacency matrix.
        a, b = star_adjacency(4), star_adjacency(2, "center")
        ea_out, ea_in = incidence_matrices(a)
        eb_out, eb_in = incidence_matrices(b)
        eout = kron(ea_out, eb_out)
        ein = kron(ea_in, eb_in)
        assert adjacency_from_incidence(eout, ein).equal(kron(a, b))

    def test_weighted_adjacency_reconstructs(self, rng):
        w = from_dense(random_dense(rng, 5, 5))
        eout, ein = incidence_matrices(w)
        assert adjacency_from_incidence(eout, ein).equal(w)

    def test_edge_count_mismatch_rejected(self):
        eout, _ = incidence_matrices(star_adjacency(3))
        _, ein = incidence_matrices(star_adjacency(4))
        with pytest.raises(ShapeError):
            adjacency_from_incidence(eout, ein)

    def test_incidence_of_empty_graph(self):
        eout, ein = incidence_matrices(zeros((3, 3)))
        assert eout.shape == (0, 3)
        assert adjacency_from_incidence(eout, ein).nnz == 0


class TestGraphWrapper:
    def test_counts(self):
        g = Graph(star_adjacency(5))
        assert g.num_vertices == 6
        assert g.num_edges == 10

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            Graph(zeros((2, 3)))

    def test_degree_distribution_includes_isolated(self):
        g = Graph(from_edges(4, [(0, 1)]))
        assert g.degree_distribution() == {0: 2, 1: 2}

    def test_self_loop_audit(self):
        g = Graph(star_adjacency(3, "center"))
        assert g.num_self_loops() == 1

    def test_empty_vertex_audit(self):
        g = Graph(from_edges(5, [(0, 1)]))
        assert g.num_empty_vertices() == 3

    def test_max_degree(self):
        assert Graph(star_adjacency(7)).max_degree() == 7

    def test_equality(self):
        assert Graph(star_adjacency(3)) == Graph(star_adjacency(3))
        assert Graph(star_adjacency(3)) != Graph(star_adjacency(4))

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Graph(star_adjacency(3)))

    def test_triangle_raw_not_multiple_of_six_returned_as_float(self):
        # A graph with a self-loop makes the raw formula non-divisible.
        g = Graph(from_edges(2, [(0, 0), (0, 1)]))
        raw = g.triangle_formula_raw()
        assert raw % 6 != 0
        assert g.num_triangles() == pytest.approx(raw / 6)


class TestDegreeHelpers:
    def test_degree_map_from_vector(self):
        assert degree_map_from_vector(np.array([1, 1, 3])) == {1: 2, 3: 1}

    def test_distribution_totals(self):
        dist = degree_distribution_of(star_adjacency(4))
        assert distribution_total_vertices(dist) == 5
        assert distribution_total_nnz(dist) == 8
