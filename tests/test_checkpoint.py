"""Unit tests for the durability layer (``repro.runtime.checkpoint``)."""

import errno
import json

import pytest

from repro.errors import ManifestError, ResumeMismatchError, StorageError
from repro.design import PowerLawDesign
from repro.runtime import (
    MANIFEST_NAME,
    CrashInjector,
    RunManifest,
    ShardRecord,
    SimulatedCrash,
    atomic_write_bytes,
    atomic_write_text,
    design_fingerprint,
    file_checksum,
    is_fatal_storage_error,
    payload_checksum,
    quarantine_shard,
    verify_shard_record,
)

DESIGN = PowerLawDesign([3, 4, 5], "center")


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x\n")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_missing_directory_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_bytes(tmp_path / "nope" / "a.bin", b"x")


class TestChecksums:
    def test_payload_and_file_agree(self, tmp_path):
        data = b"0\t1\t1\n1\t0\t1\n"
        path = tmp_path / "edges.0.tsv"
        path.write_bytes(data)
        assert payload_checksum(data) == file_checksum(path)

    def test_prefix_and_sensitivity(self):
        a, b = payload_checksum(b"a"), payload_checksum(b"b")
        assert a.startswith("sha256:") and a != b


class TestStorageClassification:
    @pytest.mark.parametrize(
        "code", [errno.ENOSPC, errno.EDQUOT, errno.EROFS, errno.EACCES, errno.EPERM]
    )
    def test_fatal_errnos(self, code):
        assert is_fatal_storage_error(OSError(code, "boom"))

    def test_transient_errnos(self):
        assert not is_fatal_storage_error(OSError(errno.EINTR, "again"))
        assert not is_fatal_storage_error(OSError())

    def test_storage_error_is_fatal_rank_error(self):
        from repro.errors import FatalRankError

        assert issubclass(StorageError, FatalRankError)


class TestDesignFingerprint:
    def test_deterministic(self):
        fp1 = design_fingerprint(DESIGN, n_ranks=4)
        fp2 = design_fingerprint(DESIGN, n_ranks=4)
        assert fp1 == fp2
        assert fp1["digest"].startswith("sha256:")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_ranks": 5},
            {"n_ranks": 4, "scramble_seed": 1},
        ],
    )
    def test_digest_changes_with_run_shape(self, kwargs):
        assert (
            design_fingerprint(DESIGN, **kwargs)["digest"]
            != design_fingerprint(DESIGN, n_ranks=4)["digest"]
        )

    def test_digest_changes_with_design(self):
        other = PowerLawDesign([3, 4, 5], "leaf")
        assert (
            design_fingerprint(other, n_ranks=4)["digest"]
            != design_fingerprint(DESIGN, n_ranks=4)["digest"]
        )

    def test_records_loop_placement_and_totals(self):
        fp = design_fingerprint(DESIGN, n_ranks=4)
        assert fp["loop_vertex"] == 0
        assert fp["num_edges"] == DESIGN.num_edges
        assert fp["star_sizes"] == [3, 4, 5]


def _manifest(**overrides):
    kwargs = dict(
        fingerprint=design_fingerprint(DESIGN, n_ranks=2), prefix="edges"
    )
    kwargs.update(overrides)
    return RunManifest(**kwargs)


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        manifest = _manifest()
        manifest.record_shard(
            ShardRecord(rank=0, filename="edges.0.tsv", nnz=10,
                        checksum="sha256:ab", size_bytes=40)
        )
        manifest.save(tmp_path)
        loaded = RunManifest.load(tmp_path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.completed_ranks() == [0]
        assert loaded.missing_ranks() == [1]
        assert loaded.total_nnz == 10

    def test_serialization_is_deterministic(self, tmp_path):
        assert _manifest().to_json() == _manifest().to_json()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            RunManifest.load(tmp_path)

    def test_load_corrupt_json_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ManifestError):
            RunManifest.load(tmp_path)

    def test_load_wrong_version_raises(self, tmp_path):
        doc = _manifest().to_dict()
        doc["version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError):
            RunManifest.load(tmp_path)

    def test_duplicate_shard_record_raises(self):
        doc = _manifest().to_dict()
        shard = {"rank": 0, "filename": "edges.0.tsv", "nnz": 1,
                 "checksum": "sha256:ab", "size_bytes": 4}
        doc["shards"] = [shard, dict(shard)]
        with pytest.raises(ManifestError):
            RunManifest.from_dict(doc)

    def test_invalid_status_rejected(self):
        with pytest.raises(ManifestError):
            _manifest(status="half-done")

    def test_fingerprint_mismatch_raises(self):
        manifest = _manifest()
        other = design_fingerprint(DESIGN, n_ranks=3)
        assert not manifest.matches_fingerprint(other)
        with pytest.raises(ResumeMismatchError):
            manifest.require_fingerprint(other)


class TestVerifyShardRecord:
    def _record(self, tmp_path, data=b"0\t1\t1\n"):
        path = tmp_path / "edges.0.tsv"
        path.write_bytes(data)
        return ShardRecord(
            rank=0, filename="edges.0.tsv", nnz=1,
            checksum=payload_checksum(data), size_bytes=len(data),
        )

    def test_intact(self, tmp_path):
        ok, reason = verify_shard_record(tmp_path, self._record(tmp_path))
        assert ok and reason == ""

    def test_missing(self, tmp_path):
        record = self._record(tmp_path)
        (tmp_path / "edges.0.tsv").unlink()
        ok, reason = verify_shard_record(tmp_path, record)
        assert not ok and "missing" in reason

    def test_truncated_reports_size(self, tmp_path):
        record = self._record(tmp_path)
        (tmp_path / "edges.0.tsv").write_bytes(b"0\t1")
        ok, reason = verify_shard_record(tmp_path, record)
        assert not ok and "bytes" in reason

    def test_flipped_byte_reports_checksum(self, tmp_path):
        record = self._record(tmp_path)
        data = bytearray((tmp_path / "edges.0.tsv").read_bytes())
        data[0] ^= 1
        (tmp_path / "edges.0.tsv").write_bytes(bytes(data))
        ok, reason = verify_shard_record(tmp_path, record)
        assert not ok and "checksum" in reason


class TestQuarantine:
    def test_renames_to_corrupt(self, tmp_path):
        path = tmp_path / "edges.1.tsv"
        path.write_bytes(b"junk")
        target = quarantine_shard(path)
        assert not path.exists()
        assert target.name == "edges.1.tsv.corrupt"
        assert target.read_bytes() == b"junk"

    def test_replaces_older_quarantine(self, tmp_path):
        (tmp_path / "edges.1.tsv.corrupt").write_bytes(b"old")
        path = tmp_path / "edges.1.tsv"
        path.write_bytes(b"new")
        assert quarantine_shard(path).read_bytes() == b"new"


class TestCrashInjector:
    def test_crashes_at_threshold_only(self):
        hook = CrashInjector(3)
        hook(0, 1)
        hook(1, 2)
        with pytest.raises(SimulatedCrash):
            hook(2, 3)

    def test_simulated_crash_evades_exception_handlers(self):
        # A real crash cannot be caught; the simulated one must not be
        # swallowed by blanket ``except Exception`` cleanup either.
        assert not issubclass(SimulatedCrash, Exception)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ManifestError):
            CrashInjector(0)
