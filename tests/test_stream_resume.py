"""Crash-safety of streamed generation: atomic shards, manifest, resume.

The acceptance property: a streamed run killed mid-way (via the
injectable crash hook) and resumed produces a shard directory
byte-identical — same shard bytes, same checksums, same manifest — to an
uninterrupted run, and ``verify_shards`` passes the measured-vs-predicted
degree check on it.
"""

import errno
from pathlib import Path

import pytest

from repro.design import PowerLawDesign
from repro.errors import (
    FatalRankError,
    GenerationError,
    ResumeMismatchError,
    RetryExhaustedError,
)
from repro.parallel import (
    generate_design_parallel,
    generate_to_disk,
    verify_shards,
)
from repro.runtime import (
    MANIFEST_NAME,
    CrashInjector,
    FailureInjector,
    MetricsRegistry,
    RunManifest,
    SimulatedCrash,
)
from repro.runtime.checkpoint import STATUS_COMPLETE, STATUS_FAILED

DESIGN = PowerLawDesign([3, 4, 5], "center")
N_RANKS = 5


def _dir_bytes(directory):
    """{filename: content} of every non-temp file in a shard directory."""
    return {
        p.name: p.read_bytes()
        for p in Path(directory).iterdir()
        if not p.name.startswith(".")
    }


class TestManifestLifecycle:
    def test_complete_run_writes_complete_manifest(self, tmp_path):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path)
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == STATUS_COMPLETE
        assert manifest.completed_ranks() == list(range(N_RANKS))
        assert manifest.total_nnz == DESIGN.num_edges == summary.total_edges
        assert summary.manifest_path == str(tmp_path / MANIFEST_NAME)

    def test_every_shard_checksum_verifies(self, tmp_path):
        generate_to_disk(DESIGN, N_RANKS, tmp_path)
        verification = verify_shards(tmp_path)
        assert verification.passed, verification.to_text()
        assert verification.degree_check.exact_match

    def test_crash_leaves_valid_partial_manifest(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path, crash_hook=CrashInjector(2)
            )
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == "in_progress"
        assert manifest.completed_ranks() == [0, 1]
        # The committed shards are already intact on disk.
        for rank in (0, 1):
            assert (tmp_path / f"edges.{rank}.tsv").is_file()


class TestResume:
    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        clean, crashed = tmp_path / "clean", tmp_path / "crashed"
        generate_to_disk(DESIGN, N_RANKS, clean)
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, crashed, crash_hook=CrashInjector(3)
            )
        metrics = MetricsRegistry()
        summary = generate_to_disk(
            DESIGN, N_RANKS, crashed, resume=True, metrics=metrics
        )
        assert summary.skipped_ranks == 3
        counters = metrics.snapshot()["counters"]
        assert counters["checkpoint.ranks_skipped"] == 3
        assert counters["checkpoint.ranks_regenerated"] == N_RANKS - 3
        # Shards AND manifest identical to the uninterrupted run.
        assert _dir_bytes(clean) == _dir_bytes(crashed)
        assert verify_shards(crashed).passed

    def test_resume_with_scramble_is_byte_identical(self, tmp_path):
        clean, crashed = tmp_path / "clean", tmp_path / "crashed"
        generate_to_disk(DESIGN, N_RANKS, clean, scramble_seed=11)
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, crashed,
                scramble_seed=11, crash_hook=CrashInjector(1),
            )
        generate_to_disk(DESIGN, N_RANKS, crashed, scramble_seed=11, resume=True)
        assert _dir_bytes(clean) == _dir_bytes(crashed)
        assert verify_shards(crashed).passed

    def test_resume_on_complete_run_regenerates_nothing(self, tmp_path):
        generate_to_disk(DESIGN, N_RANKS, tmp_path)
        metrics = MetricsRegistry()
        summary = generate_to_disk(
            DESIGN, N_RANKS, tmp_path, resume=True, metrics=metrics
        )
        assert summary.skipped_ranks == N_RANKS
        assert metrics.snapshot()["counters"]["checkpoint.ranks_regenerated"] == 0

    def test_resume_without_manifest_is_fresh_run(self, tmp_path):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path, resume=True)
        assert summary.skipped_ranks == 0
        assert verify_shards(tmp_path).passed

    def test_resume_wrong_design_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path, crash_hook=CrashInjector(1)
            )
        with pytest.raises(ResumeMismatchError):
            generate_to_disk(
                PowerLawDesign([3, 4, 5], "leaf"), N_RANKS, tmp_path, resume=True
            )

    def test_resume_wrong_seed_refused(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path,
                scramble_seed=1, crash_hook=CrashInjector(1),
            )
        with pytest.raises(ResumeMismatchError):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path, scramble_seed=2, resume=True
            )

    def test_resume_goes_through_retry_path(self, tmp_path):
        """Regenerated ranks get the executor's full retry budget."""
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path, crash_hook=CrashInjector(2)
            )
        summary = generate_to_disk(
            DESIGN, N_RANKS, tmp_path,
            resume=True,
            max_retries=1,
            failure_injector=FailureInjector([2, 4], fail_attempts=1),
        )
        assert summary.total_edges == DESIGN.num_edges
        assert verify_shards(tmp_path).passed

    def test_resume_without_retry_budget_fails_and_marks_manifest(self, tmp_path):
        with pytest.raises(RetryExhaustedError):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path,
                failure_injector=FailureInjector([3], fail_attempts=1),
            )
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == STATUS_FAILED
        assert manifest.completed_ranks() == [0, 1, 2]
        # A later resume with budget completes the run.
        generate_to_disk(DESIGN, N_RANKS, tmp_path, resume=True)
        assert verify_shards(tmp_path).passed


class TestCorruptionDetectionAndRepair:
    def _flip_one_byte(self, path):
        data = bytearray(Path(path).read_bytes())
        data[len(data) // 2] ^= 0x01
        Path(path).write_bytes(bytes(data))

    def test_verify_flags_exactly_the_corrupt_rank(self, tmp_path):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path)
        self._flip_one_byte(summary.files[2])
        verification = verify_shards(tmp_path)
        assert not verification.passed
        assert verification.bad_ranks == (2,)
        assert verification.ok_ranks == (0, 1, 3, 4)
        assert any("checksum" in f for f in verification.failures)

    def test_resume_quarantines_and_regenerates_to_identical_checksum(
        self, tmp_path
    ):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path)
        original = RunManifest.load(tmp_path).shards[2].checksum
        self._flip_one_byte(summary.files[2])
        metrics = MetricsRegistry()
        resumed = generate_to_disk(
            DESIGN, N_RANKS, tmp_path, resume=True, metrics=metrics
        )
        counters = metrics.snapshot()["counters"]
        assert counters["checkpoint.shards_quarantined"] == 1
        assert counters["checkpoint.ranks_regenerated"] == 1
        assert resumed.skipped_ranks == N_RANKS - 1
        assert (tmp_path / "edges.2.tsv.corrupt").is_file()
        assert RunManifest.load(tmp_path).shards[2].checksum == original
        assert verify_shards(tmp_path).passed

    def test_deleted_shard_regenerated(self, tmp_path):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path)
        Path(summary.files[1]).unlink()
        assert verify_shards(tmp_path).bad_ranks == (1,)
        generate_to_disk(DESIGN, N_RANKS, tmp_path, resume=True)
        assert verify_shards(tmp_path).passed


class TestGracefulDegradation:
    def test_disk_full_is_fatal_and_leaves_failed_manifest(
        self, tmp_path, monkeypatch
    ):
        import repro.engine.sinks as sinks_mod

        real = sinks_mod._open_shard_writer

        def full_after_two(path):
            if "edges.2" in Path(path).name:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real(path)

        monkeypatch.setattr(sinks_mod, "_open_shard_writer", full_after_two)
        with pytest.raises(FatalRankError):
            generate_to_disk(DESIGN, N_RANKS, tmp_path, max_retries=3)
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == STATUS_FAILED
        assert manifest.completed_ranks() == [0, 1]

    def test_wrong_total_marks_manifest_failed(self, tmp_path, monkeypatch):
        import repro.engine.sinks as sinks_mod

        real = sinks_mod._serialize_tile
        dropped = {"done": False}

        def lossy(rows, cols, vals):
            data, count = real(rows, cols, vals)
            # Drop the last line of the first tile seen (rank 0 runs
            # first on the serial backend), undercounting the total.
            if not dropped["done"] and count:
                dropped["done"] = True
                lines = data.splitlines(keepends=True)[:-1]
                return b"".join(lines), count - 1
            return data, count

        monkeypatch.setattr(sinks_mod, "_serialize_tile", lossy)
        with pytest.raises(GenerationError):
            generate_to_disk(DESIGN, N_RANKS, tmp_path)
        assert RunManifest.load(tmp_path).status == STATUS_FAILED


class TestStreamSummaryContract:
    def test_files_sorted_by_rank_and_path_convertible(self, tmp_path):
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path)
        assert [Path(f).name for f in summary.files] == [
            f"edges.{r}.tsv" for r in range(N_RANKS)
        ]
        assert all(Path(f).is_file() for f in summary.files)

    def test_file_order_preserved_across_resume(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN, N_RANKS, tmp_path, crash_hook=CrashInjector(3)
            )
        summary = generate_to_disk(DESIGN, N_RANKS, tmp_path, resume=True)
        assert [Path(f).name for f in summary.files] == [
            f"edges.{r}.tsv" for r in range(N_RANKS)
        ]

    def test_scrambled_run_keeps_degree_distribution(self, tmp_path):
        from repro.parallel import read_streamed_degree_distribution

        summary = generate_to_disk(DESIGN, 4, tmp_path, scramble_seed=3)
        measured = read_streamed_degree_distribution(
            summary.files, DESIGN.num_vertices
        )
        assert measured == DESIGN.degree_distribution


class TestDeprecationShims:
    def test_generate_to_disk_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="memory_budget_entries"):
            generate_to_disk(DESIGN, 2, tmp_path, memory_entries=10_000_000)

    def test_streamed_degree_distribution_warns(self):
        from repro.parallel import streamed_degree_distribution

        with pytest.warns(DeprecationWarning, match="memory_budget_entries"):
            streamed_degree_distribution(DESIGN, 2, memory_entries=10_000_000)

    def test_validate_streamed_warns(self):
        from repro.parallel import validate_streamed

        with pytest.warns(DeprecationWarning, match="memory_budget_entries"):
            check = validate_streamed(DESIGN, 2, memory_entries=10_000_000)
        assert check.exact_match


class TestGenerateDesignParallelCheckpoint:
    def test_checkpointed_graph_equals_direct_realization(self, tmp_path):
        graph = generate_design_parallel(
            DESIGN, 4, checkpoint_dir=tmp_path / "ckpt"
        )
        assert graph.adjacency.equal(DESIGN.realize().adjacency)
        assert RunManifest.load(tmp_path / "ckpt").status == STATUS_COMPLETE

    def test_resume_completes_interrupted_checkpointed_run(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(SimulatedCrash):
            generate_to_disk(DESIGN, 4, ckpt, crash_hook=CrashInjector(2))
        graph = generate_design_parallel(
            DESIGN, 4, checkpoint_dir=ckpt, resume=True
        )
        assert graph.adjacency.equal(DESIGN.realize().adjacency)

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(GenerationError):
            generate_design_parallel(DESIGN, 4, resume=True)
