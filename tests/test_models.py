"""The generator-model layer: SKG family determinism and engine fit.

The hard promise under test is **counter-based determinism**: a
stochastic model's output is a pure function of ``(seed, edge index,
level)``, so the *same bytes* come out of every backend, scheduler,
memory budget, and transport — and resume after a crash regenerates
exactly the missing shards.  The deterministic-Kronecker path must stay
byte-identical to the pre-model engine (its plans and fingerprints are
unchanged), and cross-model or cross-seed resume must be refused by the
manifest fingerprint, never silently mixed.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.engine import (
    RunConfig,
    ShardSink,
    StaticScheduler,
    WorkQueueScheduler,
    execute,
    plan_from_design,
    plan_from_model,
)
from repro.errors import (
    GenerationError,
    KernelUnavailableError,
    PartitionError,
    ResumeMismatchError,
)
from repro.models import (
    DETERMINISTIC_KRON,
    GRAPH500_INITIATOR,
    MODEL_CHOICES,
    GeneratorModel,
    NoisySKGModel,
    SKGRankSpec,
    StochasticKroneckerModel,
    counter_u01,
    noisy_skg_from_design,
    resolve_model,
    skg_from_design,
)
from repro.parallel import generate_to_disk
from repro.parallel.partition import partition_bc
from repro.parallel.machine import VirtualCluster

DESIGN = PowerLawDesign([3, 4, 5], "center")
SKG = StochasticKroneckerModel(levels=6, num_edges=300, seed=42)
NOISY = NoisySKGModel(levels=6, num_edges=300, seed=42, noise=0.1)


def shard_bytes(directory):
    return {
        p.name: p.read_bytes() for p in sorted(Path(directory).glob("*.tsv"))
    }


def manifest_fields(directory):
    doc = json.loads((Path(directory) / "manifest.json").read_text())
    return {k: doc[k] for k in ("fingerprint", "shards", "status", "prefix")}


# -- the counter-based PRNG ---------------------------------------------------
class TestCounterU01:
    def test_values_in_unit_interval(self):
        u = counter_u01(7, np.arange(10_000, dtype=np.uint64), 3)
        assert float(u.min()) >= 0.0
        assert float(u.max()) < 1.0

    def test_tile_boundary_invariance(self):
        """The stream is indexed by absolute edge counter, so chunking
        cannot change any value — the root of budget independence."""
        idx = np.arange(1000, dtype=np.uint64)
        whole = counter_u01(9, idx, 2)
        pieces = np.concatenate(
            [counter_u01(9, idx[i : i + 17], 2) for i in range(0, 1000, 17)]
        )
        np.testing.assert_array_equal(whole, pieces)

    def test_seed_and_level_decorrelate(self):
        idx = np.arange(4096, dtype=np.uint64)
        assert not np.array_equal(counter_u01(1, idx, 0), counter_u01(2, idx, 0))
        assert not np.array_equal(counter_u01(1, idx, 0), counter_u01(1, idx, 1))

    def test_roughly_uniform(self):
        u = counter_u01(0, np.arange(1 << 16, dtype=np.uint64), 5)
        hist, _ = np.histogram(u, bins=16, range=(0.0, 1.0))
        assert hist.min() > (1 << 12) * 0.85
        assert hist.max() < (1 << 12) * 1.15


# -- model construction and validation ----------------------------------------
class TestModelConstruction:
    def test_protocol_conformance(self):
        for model in (DETERMINISTIC_KRON, SKG, NOISY):
            assert isinstance(model, GeneratorModel)
        assert DETERMINISTIC_KRON.name == "kron"
        assert SKG.name == "skg"
        assert NOISY.name == "noisy-skg"
        assert set(MODEL_CHOICES) == {"kron", "skg", "noisy-skg"}

    def test_initiator_must_normalize(self):
        with pytest.raises(GenerationError, match="sum"):
            StochasticKroneckerModel(
                levels=3, num_edges=10, initiator=(0.5, 0.4, 0.3, 0.2)
            )

    def test_levels_and_edges_validated(self):
        with pytest.raises(GenerationError):
            StochasticKroneckerModel(levels=0, num_edges=10)
        with pytest.raises(GenerationError):
            StochasticKroneckerModel(levels=3, num_edges=-1)

    def test_noisy_feasibility_bound(self):
        # noise must stay within min(b, c, (a+d)/2) or some level's
        # perturbed initiator goes negative.
        with pytest.raises(GenerationError, match="noise"):
            NoisySKGModel(levels=3, num_edges=10, noise=0.5)

    def test_noisy_thresholds_differ_per_level(self):
        per_level = NOISY._thresholds
        assert len(set(per_level)) > 1  # levels got distinct perturbations
        plain = SKG._thresholds
        assert all(t == plain[0] for t in plain)

    def test_from_design_matches_scale(self):
        m = skg_from_design(DESIGN, seed=3)
        assert m.num_vertices >= DESIGN.num_vertices
        assert m.num_edges == DESIGN.num_edges
        assert m.seed == 3
        noisy = noisy_skg_from_design(DESIGN, seed=3, noise=0.05)
        assert noisy.noise == 0.05

    def test_resolve_model(self):
        assert resolve_model(None) is None
        assert resolve_model("kron") is None
        assert resolve_model(SKG) is SKG
        assert resolve_model("skg", design=DESIGN).name == "skg"
        assert resolve_model("noisy-skg", design=DESIGN).name == "noisy-skg"
        with pytest.raises(GenerationError, match="unknown generator model"):
            resolve_model("bogus", design=DESIGN)
        with pytest.raises(GenerationError, match="design"):
            resolve_model("skg")
        with pytest.raises(GenerationError, match="GeneratorModel"):
            resolve_model(3.14)

    def test_run_config_validates_model_name(self):
        with pytest.raises(GenerationError, match="unknown generator model"):
            RunConfig(model="typo")
        assert RunConfig(model="skg").model == "skg"


# -- plan building ------------------------------------------------------------
class TestPlanFromModel:
    def test_tasks_cover_edge_range_exactly(self):
        plan = plan_from_model(SKG, 7)
        specs = [t.spec for t in plan.tasks]
        assert all(isinstance(s, SKGRankSpec) for s in specs)
        assert specs[0].start == 0
        assert specs[-1].stop == SKG.num_edges
        for prev, cur in zip(specs, specs[1:]):
            assert prev.stop == cur.start
        assert sum(t.estimated_entries for t in plan.tasks) == SKG.num_edges

    def test_empty_ranks_gated(self):
        tiny = StochasticKroneckerModel(levels=4, num_edges=2)
        with pytest.raises(PartitionError, match="empty"):
            plan_from_model(tiny, 5)
        plan = plan_from_model(tiny, 5, allow_empty_ranks=True)
        assert plan.n_ranks == 5
        assert sum(t.estimated_entries for t in plan.tasks) == 2

    def test_fingerprint_distinguishes_model_seed_scale(self):
        digests = {
            plan_from_model(m, 4).fingerprint["digest"]
            for m in (
                SKG,
                NOISY,
                StochasticKroneckerModel(levels=6, num_edges=300, seed=43),
                StochasticKroneckerModel(levels=7, num_edges=300, seed=42),
            )
        }
        assert len(digests) == 4

    def test_no_shared_factor(self):
        plan = plan_from_model(SKG, 2)
        assert plan.partition is None
        with pytest.raises(GenerationError, match="no shared right factor"):
            plan.c_matrix

    def test_native_kernel_refused(self):
        plan = plan_from_model(SKG, 2, kernel="native")
        with pytest.raises(KernelUnavailableError, match="native"):
            execute(plan, ShardSink("/nonexistent-never-created"))

    def test_kron_rank_tasks_delegated_to_partition_builders(self):
        with pytest.raises(GenerationError):
            DETERMINISTIC_KRON.rank_tasks(4)


class TestPlanFromPartitionValidation:
    def test_mismatched_prematerialized_c_refused(self):
        # Satellite: a pre-materialized C whose nnz disagrees with the
        # partition's C chain would silently skew every estimate.
        from repro.engine.plan import plan_from_partition

        chain = DESIGN.to_chain()
        cluster = VirtualCluster(n_ranks=2, memory_budget_entries=10**6)
        partition = partition_bc(chain, cluster)
        good_c = partition.c_chain.materialize()
        plan = plan_from_partition(
            partition,
            num_vertices=DESIGN.num_vertices,
            memory_budget_entries=10**6,
            c=good_c,
        )
        assert plan.c_matrix is good_c
        from repro.sparse.coo import COOMatrix

        bogus = COOMatrix(
            good_c.shape,
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
        with pytest.raises(GenerationError, match="nnz"):
            plan_from_partition(
                partition,
                num_vertices=DESIGN.num_vertices,
                memory_budget_entries=10**6,
                c=bogus,
            )


# -- seed determinism and byte-identity ---------------------------------------
@pytest.mark.parametrize("model", [SKG, NOISY], ids=["skg", "noisy-skg"])
class TestSeedDeterminism:
    def test_same_seed_same_bytes_different_seed_different(
        self, model, tmp_path
    ):
        runs = {}
        for tag, m in (
            ("a", model),
            ("b", model),
            ("other", model.__class__(levels=6, num_edges=300, seed=7)),
        ):
            out = tmp_path / tag
            execute(plan_from_model(m, 3), ShardSink(out))
            runs[tag] = shard_bytes(out)
        assert runs["a"] == runs["b"]
        assert runs["a"] != runs["other"]

    def test_byte_identity_across_budgets_and_schedulers(
        self, model, tmp_path
    ):
        base = tmp_path / "base"
        execute(plan_from_model(model, 4), ShardSink(base))
        variants = [
            (plan_from_model(model, 4, memory_budget_entries=17), None),
            (plan_from_model(model, 4, memory_budget_entries=1), None),
            (plan_from_model(model, 4), WorkQueueScheduler()),
            (
                plan_from_model(model, 4, memory_budget_entries=13),
                StaticScheduler(batch_size=1),
            ),
        ]
        for i, (plan, scheduler) in enumerate(variants):
            out = tmp_path / f"v{i}"
            execute(plan, ShardSink(out), config=RunConfig(scheduler=scheduler))
            assert shard_bytes(out) == shard_bytes(base), i
            assert manifest_fields(out) == manifest_fields(base), i

    def test_byte_identity_across_backends(self, model, tmp_path):
        base = tmp_path / "serial"
        execute(plan_from_model(model, 4), ShardSink(base))
        for backend in ("thread", "multiprocessing"):
            out = tmp_path / backend
            execute(
                plan_from_model(model, 4),
                ShardSink(out),
                config=RunConfig(backend=backend),
            )
            assert shard_bytes(out) == shard_bytes(base), backend

    def test_byte_identity_over_transport(self, model, tmp_path):
        from repro.net import execute_over_transport

        base = tmp_path / "direct"
        execute(plan_from_model(model, 3), ShardSink(base))
        out = tmp_path / "net"
        execute_over_transport(
            plan_from_model(model, 3), ShardSink(out), transport="inproc"
        )
        assert shard_bytes(out) == shard_bytes(base)
        assert manifest_fields(out) == manifest_fields(base)


class TestModelThroughDrivers:
    def test_generate_to_disk_with_model_config(self, tmp_path):
        out = tmp_path / "skg"
        summary = generate_to_disk(
            DESIGN, 3, out, config=RunConfig(model=SKG)
        )
        assert summary.total_edges == SKG.num_edges
        fp = manifest_fields(out)["fingerprint"]
        assert fp["model"] == "skg"
        assert fp["seed"] == 42

    def test_model_by_name_matches_design_scale(self, tmp_path):
        out = tmp_path / "named"
        summary = generate_to_disk(
            DESIGN, 3, out, config=RunConfig(model="skg")
        )
        assert summary.total_edges == DESIGN.num_edges

    def test_verify_shards_checks_model_manifest(self, tmp_path):
        from repro.parallel import verify_shards

        out = tmp_path / "skg"
        generate_to_disk(DESIGN, 3, out, config=RunConfig(model=SKG))
        verification = verify_shards(out)
        assert verification.passed
        # Corruption is still caught through the model manifest path.
        shard = next(Path(out).glob("edges.*.tsv"))
        shard.write_bytes(shard.read_bytes()[:-4] + b"9\t9\n")
        assert not verify_shards(out).passed

    def test_resume_after_crash_regenerates_missing_shards(self, tmp_path):
        from repro.runtime.checkpoint import CrashInjector, SimulatedCrash

        clean = tmp_path / "clean"
        generate_to_disk(DESIGN, 4, clean, config=RunConfig(model=SKG))
        crashed = tmp_path / "crashed"
        with pytest.raises(SimulatedCrash):
            generate_to_disk(
                DESIGN,
                4,
                crashed,
                config=RunConfig(model=SKG),
                crash_hook=CrashInjector(2),
            )
        summary = generate_to_disk(
            DESIGN, 4, crashed, config=RunConfig(model=SKG, resume=True)
        )
        assert summary.skipped_ranks == 2
        assert shard_bytes(crashed) == shard_bytes(clean)
        assert manifest_fields(crashed) == manifest_fields(clean)

    def test_resume_refuses_cross_model(self, tmp_path):
        out = tmp_path / "kron"
        generate_to_disk(DESIGN, 3, out)
        with pytest.raises(ResumeMismatchError):
            generate_to_disk(
                DESIGN, 3, out, config=RunConfig(model=SKG, resume=True)
            )

    def test_resume_refuses_cross_seed(self, tmp_path):
        out = tmp_path / "seeded"
        generate_to_disk(DESIGN, 3, out, config=RunConfig(model=SKG))
        reseeded = StochasticKroneckerModel(levels=6, num_edges=300, seed=43)
        with pytest.raises(ResumeMismatchError):
            generate_to_disk(
                DESIGN,
                3,
                out,
                config=RunConfig(model=reseeded, resume=True),
            )

    def test_unsupported_drivers_refuse_model(self):
        from repro.parallel.scaling import run_scaling_study

        with pytest.raises(GenerationError, match="model"):
            run_scaling_study(
                DESIGN.to_chain(), [1], config=RunConfig(model=SKG)
            )

    def test_kron_output_unchanged_by_model_field(self, tmp_path):
        """The refactor's ground rule: plans built the historical way
        produce byte-identical shards and manifests (the fingerprint has
        no model keys, so pre-refactor checkpoints still resume)."""
        out = tmp_path / "kron"
        generate_to_disk(DESIGN, 3, out, config=RunConfig(scramble_seed=5))
        fp = manifest_fields(out)["fingerprint"]
        assert "model" not in fp
        from repro.runtime.checkpoint import design_fingerprint

        assert fp == design_fingerprint(DESIGN, n_ranks=3, scramble_seed=5)


# -- CLI ----------------------------------------------------------------------
class TestModelCLI:
    def test_info_reports_capabilities(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for needle in (
            "kernels:",
            "backends:",
            "start methods:",
            "transports:",
            "generator models: kron, skg, noisy-skg",
        ):
            assert needle in out

    def test_generate_model_shards_and_seed(self, tmp_path, capsys):
        from repro.cli import main

        out1 = tmp_path / "one"
        out2 = tmp_path / "two"
        out3 = tmp_path / "three"
        base = ["generate", "3", "4", "5", "--ranks", "2", "--sink", "shards"]
        assert main(base + ["--model", "skg", "--out", str(out1)]) == 0
        assert main(base + ["--model", "skg", "--out", str(out2)]) == 0
        assert (
            main(
                base
                + ["--model", "skg", "--model-seed", "9", "--out", str(out3)]
            )
            == 0
        )
        assert shard_bytes(out1) == shard_bytes(out2)
        assert shard_bytes(out1) != shard_bytes(out3)

    def test_generate_model_requires_streaming_sink(self, capsys):
        from repro.cli import main

        assert main(["generate", "3", "4", "--model", "noisy-skg"]) == 2
        assert "streaming sink" in capsys.readouterr().err

    def test_generate_model_degrees(self, capsys):
        from repro.cli import main

        code = main(
            [
                "generate",
                "3",
                "4",
                "5",
                "--model",
                "noisy-skg",
                "--sink",
                "degrees",
                "--ranks",
                "2",
            ]
        )
        assert code == 0
        assert "noisy-skg model" in capsys.readouterr().out
