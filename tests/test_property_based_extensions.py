"""Property-based tests (hypothesis) for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import (
    PowerLawDesign,
    ValueDistribution,
    design_spectrum,
    triangle_count_raw,
)
from repro.graphs import SelfLoop, StarGraph
from repro.grb import GrbVector
from repro.parallel import streamed_degree_distribution
from repro.semiring import PLUS_TIMES

star_sizes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)
loops = st.sampled_from([None, "center", "leaf"])


@st.composite
def value_maps(draw):
    keys = st.integers(-20, 20).filter(lambda v: v != 0)
    return draw(st.dictionaries(keys, st.integers(1, 9), min_size=1, max_size=5))


# -- spectra ------------------------------------------------------------------


@given(star_sizes, loops)
@settings(max_examples=30, deadline=None)
def test_spectrum_moments_match_exact_counts(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    spectrum = design_spectrum(design)
    assert spectrum.dimension == design.num_vertices
    assert spectrum.moment(2) == pytest.approx(design.raw_nnz, rel=1e-9, abs=1e-6)
    raw = triangle_count_raw(design.stars)
    assert spectrum.moment(3) == pytest.approx(raw, rel=1e-9, abs=1e-6)


@given(st.integers(1, 30), loops)
@settings(max_examples=40, deadline=None)
def test_star_spectrum_trace_identities(m_hat, loop):
    from repro.design import star_spectrum

    star = StarGraph(m_hat, SelfLoop.coerce(loop))
    spectrum = star_spectrum(m_hat, loop)
    # trace(A) = #self-loops; trace(A^2) = nnz.
    expected_trace = 0 if star.self_loop is SelfLoop.NONE else 1
    assert spectrum.moment(1) == pytest.approx(expected_trace, abs=1e-8)
    assert spectrum.moment(2) == pytest.approx(star.nnz, rel=1e-9)


# -- value distributions -------------------------------------------------------------


@given(value_maps(), value_maps())
@settings(max_examples=60, deadline=None)
def test_value_kron_totals_multiply(da, db):
    a, b = ValueDistribution(da), ValueDistribution(db)
    c = a.kron(b)
    assert c.total_nnz() == a.total_nnz() * b.total_nnz()
    assert c.total_weight() == a.total_weight() * b.total_weight()


@given(value_maps(), value_maps())
@settings(max_examples=40, deadline=None)
def test_value_kron_commutes(da, db):
    a, b = ValueDistribution(da), ValueDistribution(db)
    assert a.kron(b) == b.kron(a)


# -- wedges / clustering ----------------------------------------------------------------


@given(star_sizes, loops)
@settings(max_examples=25, deadline=None)
def test_wedges_match_realized(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    if design.raw_nnz > 40_000:
        return
    graph = design.realize()
    assert graph.num_wedges() == design.num_wedges
    assert 0 <= design.clustering_coefficient <= 1


# -- streaming --------------------------------------------------------------------


@given(st.lists(st.integers(2, 5), min_size=2, max_size=3), loops, st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_streamed_distribution_matches_prediction(sizes, loop, n_ranks):
    design = PowerLawDesign(sizes, loop)
    b_nnz = design.stars[0].nnz
    ranks = min(n_ranks, b_nnz)
    dist = streamed_degree_distribution(design, ranks)
    assert dist == design.degree_distribution


# -- GrbVector algebra ---------------------------------------------------------------


@st.composite
def grb_vectors(draw, size=8):
    idx = draw(st.lists(st.integers(0, size - 1), unique=True, max_size=size))
    vals = draw(
        st.lists(st.integers(-5, 5), min_size=len(idx), max_size=len(idx))
    )
    return GrbVector(size, np.array(idx, dtype=np.int64), np.array(vals))


@given(grb_vectors(), grb_vectors())
@settings(max_examples=60, deadline=None)
def test_grb_vector_ewise_matches_dense(a, b):
    np.testing.assert_array_equal(
        a.ewise_add(b).to_dense(), a.to_dense() + b.to_dense()
    )
    np.testing.assert_array_equal(
        a.ewise_mult(b).to_dense(), a.to_dense() * b.to_dense()
    )


@given(grb_vectors())
@settings(max_examples=40, deadline=None)
def test_grb_vector_reduce_matches_dense(v):
    assert v.reduce(PLUS_TIMES) == v.to_dense().sum()


@given(grb_vectors(), grb_vectors())
@settings(max_examples=40, deadline=None)
def test_grb_mask_and_complement_partition(v, mask):
    kept = v.select_mask(mask)
    dropped = v.select_mask(mask, complement=True)
    np.testing.assert_array_equal(
        kept.to_dense() + dropped.to_dense(), v.to_dense()
    )
    assert kept.nnz + dropped.nnz == v.nnz
