"""Streamed triangle participation: exactness, budgets, deficiency.

Three claims under test: (1) the blocked streaming algorithm computes
*exactly* the same triangle count and participation histograms as the
in-memory counters, at every memory budget — including budgets far
smaller than the edge set; (2) it consumes real shard directories rank
by rank; (3) it reproduces the arXiv:1102.5046 finding on a recorded
configuration — plain SKG is triangle-deficient against its own
noisy-initiator variant.
"""

import itertools

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.engine import RunConfig, ShardSink, execute, plan_from_model
from repro.errors import ValidationError
from repro.models import NoisySKGModel, StochasticKroneckerModel
from repro.parallel import generate_to_disk
from repro.validate import (
    compare_triangle_participation,
    count_triangles_ordered,
    iter_shard_edges,
    triangle_stream,
)

DESIGN = PowerLawDesign([3, 4, 5], "center")

#: The recorded deficiency configuration: at 2^14 vertices and average
#: degree 2, plain SKG realizes fewer than half the triangles of its
#: noisy variant (measured ratio ~0.47 for this seed; see EXPERIMENTS.md).
DEFICIENCY_CONFIG = dict(levels=14, num_edges=16384, seed=1)


def brute_force(rows, cols, n):
    """Reference: per-vertex and per-edge triangle counts via sets."""
    edges = set()
    for u, v in zip(rows.tolist(), cols.tolist()):
        if u != v:
            edges.add((min(u, v), max(u, v)))
    adj = {v: set() for v in range(n)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    vertex = [0] * n
    edge = {}
    triangles = 0
    for u, v, w in itertools.combinations(range(n), 3):
        if v in adj[u] and w in adj[u] and w in adj[v]:
            triangles += 1
            for x in (u, v, w):
                vertex[x] += 1
            for e in ((u, v), (u, w), (v, w)):
                edge[e] = edge.get(e, 0) + 1
    return edges, vertex, edge, triangles


class TestExactness:
    @pytest.mark.parametrize("budget", [10**9, 64, 9, 1])
    def test_matches_brute_force_on_random_graphs(self, rng, budget):
        n = 24
        for _ in range(5):
            m = 60
            rows = rng.integers(0, n, size=m).astype(np.int64)
            cols = rng.integers(0, n, size=m).astype(np.int64)
            edges, vertex, edge, triangles = brute_force(rows, cols, n)
            result = triangle_stream(
                [(rows, cols)], n, memory_budget_entries=budget
            )
            assert result.num_edges == len(edges)
            assert result.num_triangles == triangles
            expect_vertex = {}
            for c in vertex:
                expect_vertex[c] = expect_vertex.get(c, 0) + 1
            assert result.vertex_participation == expect_vertex
            expect_edge = {}
            for c in edge.values():
                expect_edge[c] = expect_edge.get(c, 0) + 1
            zero = len(edges) - len(edge)
            if zero:
                expect_edge[0] = zero
            assert result.edge_participation == expect_edge

    def test_design_triangles_match_closed_form(self):
        graph = DESIGN.realize()
        from repro.sparse.convert import as_coo

        coo = as_coo(graph.adjacency)
        result = triangle_stream(
            [(coo.rows, coo.cols)], DESIGN.num_vertices
        )
        assert result.num_triangles == DESIGN.num_triangles
        assert result.num_triangles == count_triangles_ordered(graph)

    def test_budget_invariance_far_below_edge_count(self):
        graph = DESIGN.realize()
        from repro.sparse.convert import as_coo

        coo = as_coo(graph.adjacency)
        edges = [(coo.rows, coo.cols)]
        base = triangle_stream(edges, DESIGN.num_vertices)
        assert base.num_blocks == 1
        tiny = triangle_stream(
            edges, DESIGN.num_vertices, memory_budget_entries=50
        )
        assert tiny.num_blocks > 1
        assert tiny.stream_passes > base.stream_passes
        for field in (
            "num_edges",
            "num_triangles",
            "vertex_participation",
            "edge_participation",
        ):
            assert getattr(tiny, field) == getattr(base, field), field

    def test_empty_input(self):
        result = triangle_stream([], 0)
        assert result.num_edges == 0
        assert result.num_triangles == 0
        assert result.edge_participation_fraction == 0.0

    def test_out_of_range_endpoint_rejected(self):
        rows = np.array([0, 5], dtype=np.int64)
        cols = np.array([1, 6], dtype=np.int64)
        with pytest.raises(ValidationError, match="out of range"):
            triangle_stream([(rows, cols)], 4)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            triangle_stream([], 0, memory_budget_entries=0)


class TestShardInput:
    def test_reads_shard_directory_with_manifest_vertices(self, tmp_path):
        out = tmp_path / "shards"
        generate_to_disk(DESIGN, 3, out)
        result = triangle_stream(out)
        assert result.num_vertices == DESIGN.num_vertices
        assert result.num_triangles == DESIGN.num_triangles

    def test_shard_stream_equals_in_memory(self, tmp_path):
        model = StochasticKroneckerModel(levels=7, num_edges=400, seed=5)
        out = tmp_path / "skg"
        execute(plan_from_model(model, 3), ShardSink(out))
        streamed = triangle_stream(out)
        chunks = list(iter_shard_edges(out))
        in_memory = triangle_stream(chunks, model.num_vertices)
        assert streamed.num_triangles == in_memory.num_triangles
        assert streamed.edge_participation == in_memory.edge_participation
        # And a tiny budget over the on-disk shards still agrees.
        tiny = triangle_stream(out, memory_budget_entries=37)
        assert tiny.num_blocks > 1
        assert tiny.num_triangles == streamed.num_triangles


class TestDeficiencyFlag:
    def test_plain_skg_deficient_against_noisy_at_recorded_config(self):
        results = {}
        for cls, name in (
            (StochasticKroneckerModel, "skg"),
            (NoisySKGModel, "noisy"),
        ):
            model = cls(**DEFICIENCY_CONFIG)
            rows, cols, _ = model._generate(0, model.num_edges)
            results[name] = triangle_stream([(rows, cols)], model.num_vertices)
        comparison = compare_triangle_participation(
            results["noisy"], results["skg"]
        )
        assert comparison.deficient, comparison.to_text()
        assert comparison.triangle_ratio < 0.5
        assert (
            results["skg"].edge_participation_fraction
            < results["noisy"].edge_participation_fraction
        )
        assert "TRIANGLE-DEFICIENT" in comparison.to_text()

    def test_exact_design_is_not_deficient_against_itself(self):
        graph = DESIGN.realize()
        from repro.sparse.convert import as_coo

        coo = as_coo(graph.adjacency)
        measured = triangle_stream([(coo.rows, coo.cols)], DESIGN.num_vertices)
        comparison = compare_triangle_participation(DESIGN, measured)
        assert comparison.triangle_ratio == 1.0
        assert not comparison.deficient

    def test_comparison_accepts_plain_int(self):
        graph = DESIGN.realize()
        from repro.sparse.convert import as_coo

        coo = as_coo(graph.adjacency)
        measured = triangle_stream([(coo.rows, coo.cols)], DESIGN.num_vertices)
        comparison = compare_triangle_participation(
            DESIGN.num_triangles * 4, measured, threshold=0.5
        )
        assert comparison.deficient
