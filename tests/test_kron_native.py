"""Native kernel byte-identity and capability gating.

The native path (``repro.kron._fast``) must be *invisible* in the
output: tiles, shard bytes, and manifests are byte-identical to the
pure-NumPy oracle at every memory budget.  Without numba installed, the
same kernel bodies run as plain Python under the
``REPRO_NATIVE_ALLOW_PYTHON=1`` testing hook — same code, same answers,
just slow — so these properties hold in every environment; a numba
install only changes ``kernels_jitted()``.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.sinks import _serialize_tile, _serialize_tile_native
from repro.errors import GenerationError, KernelUnavailableError
from repro.kron import _fast
from repro.kron.tiles import kron_tiles
from repro.semiring import MAX_PLUS
from repro.sparse import from_dense


@pytest.fixture
def python_native(monkeypatch):
    """Enable the plain-Python native fallback for one test."""
    monkeypatch.setenv(_fast.ALLOW_PYTHON_ENV, "1")
    _fast._reset()
    yield
    monkeypatch.delenv(_fast.ALLOW_PYTHON_ENV, raising=False)
    _fast._reset()


def random_pair(rng, max_n=6):
    a = rng.integers(0, 3, size=(rng.integers(1, max_n), rng.integers(1, max_n)))
    b = rng.integers(0, 3, size=(rng.integers(1, max_n), rng.integers(1, max_n)))
    return from_dense(a.astype(np.int64)), from_dense(b.astype(np.int64))


def collect(bp, c, budget, kernel):
    tiles = list(kron_tiles(bp, c, budget, kernel=kernel))
    if not tiles:
        return (np.array([], dtype=np.int64),) * 3
    return tuple(
        np.concatenate([t[i] for t in tiles]) for i in range(3)
    )


class TestGating:
    def test_kernel_choices_frozen(self):
        assert _fast.KERNEL_CHOICES == ("auto", "numpy", "native")

    def test_auto_resolves_to_a_concrete_kernel(self):
        resolved = _fast.resolve_kernel("auto")
        assert resolved in ("numpy", "native")
        assert (resolved == "native") == _fast.native_available()
        assert _fast.resolve_kernel(None) == resolved

    def test_unknown_kernel_rejected(self):
        with pytest.raises(GenerationError, match="unknown kernel"):
            _fast.resolve_kernel("fortran")

    def test_strict_native_without_capability_raises(self):
        if _fast.native_available():
            pytest.skip("native capability present in this environment")
        with pytest.raises(KernelUnavailableError, match="numba"):
            _fast.resolve_kernel("native")

    def test_env_hook_grants_capability_in_clean_interpreter(self):
        # A subprocess keeps this test independent of module-level cache
        # state and of whether numba happens to be installed here.
        code = (
            "import os; os.environ['%s']='1'\n"
            "from repro.kron import _fast\n"
            "assert _fast.native_available()\n"
            "assert _fast.resolve_kernel('native') == 'native'\n"
            "assert _fast.warmup_native() in (True, False)\n"
            "print('ok')\n" % _fast.ALLOW_PYTHON_ENV
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "ok"

    def test_native_inapplicable_semiring_strict_raises(self, python_native, rng):
        bp, c = random_pair(rng)
        with pytest.raises(GenerationError, match="plus-times"):
            list(kron_tiles(bp, c, None, MAX_PLUS, kernel="native"))

    def test_native_inapplicable_semiring_auto_downgrades(self, python_native, rng):
        bp, c = random_pair(rng)
        tiles = list(kron_tiles(bp, c, None, MAX_PLUS, kernel="auto"))
        oracle = list(kron_tiles(bp, c, None, MAX_PLUS, kernel="numpy"))
        for (r1, c1, v1), (r2, c2, v2) in zip(tiles, oracle):
            np.testing.assert_array_equal(r1, r2)
            np.testing.assert_array_equal(c1, c2)
            np.testing.assert_array_equal(v1, v2)


class TestExpandByteIdentity:
    def test_random_pairs_all_budgets(self, python_native, rng):
        for _ in range(25):
            bp, c = random_pair(rng)
            for budget in (None, 1, 3, 17):
                native = collect(bp, c, budget, "native")
                oracle = collect(bp, c, budget, "numpy")
                for got, want in zip(native, oracle):
                    np.testing.assert_array_equal(got, want)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(
            st.lists(st.integers(-3, 3), min_size=1, max_size=4),
            min_size=1,
            max_size=4,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
        b=st.lists(
            st.lists(st.integers(-3, 3), min_size=1, max_size=4),
            min_size=1,
            max_size=4,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1),
        budget=st.sampled_from([None, 1, 2, 5, 64]),
    )
    def test_hypothesis_expand_matches_oracle(self, a, b, budget):
        # The fixture can't wrap @given, so manage the env hook inline.
        import os

        os.environ[_fast.ALLOW_PYTHON_ENV] = "1"
        _fast._reset()
        try:
            bp = from_dense(np.asarray(a, dtype=np.int64))
            c = from_dense(np.asarray(b, dtype=np.int64))
            native = collect(bp, c, budget, "native")
            oracle = collect(bp, c, budget, "numpy")
            for got, want in zip(native, oracle):
                np.testing.assert_array_equal(got, want)
        finally:
            os.environ.pop(_fast.ALLOW_PYTHON_ENV, None)
            _fast._reset()

    def test_expand_tile_empty_factor(self, python_native):
        empty = np.array([], dtype=np.int64)
        rows, cols, vals = _fast.expand_tile(
            empty, empty, empty, empty, empty, empty, 3, 3
        )
        assert rows.size == cols.size == vals.size == 0


class TestEncoderByteIdentity:
    @settings(max_examples=80, deadline=None)
    @given(
        triples=st.lists(
            st.tuples(
                st.integers(-(2**63), 2**63 - 1),
                st.integers(-(2**63), 2**63 - 1),
                st.integers(-(2**63), 2**63 - 1),
            ),
            max_size=20,
        )
    )
    def test_hypothesis_encoder_matches_fstring_oracle(self, triples):
        import os

        os.environ[_fast.ALLOW_PYTHON_ENV] = "1"
        _fast._reset()
        try:
            if triples:
                rows, cols, vals = (
                    np.array(col, dtype=np.int64) for col in zip(*triples)
                )
            else:
                rows = cols = vals = np.array([], dtype=np.int64)
            native, n_native = _serialize_tile_native(rows, cols, vals)
            oracle, n_oracle = _serialize_tile(rows, cols, vals)
            assert native == oracle
            assert n_native == n_oracle
        finally:
            os.environ.pop(_fast.ALLOW_PYTHON_ENV, None)
            _fast._reset()

    def test_int64_extremes(self, python_native):
        extremes = np.array(
            [0, 1, -1, 9, -9, 10, -10, 2**63 - 1, -(2**63), 123456789],
            dtype=np.int64,
        )
        native, _ = _serialize_tile_native(extremes, extremes[::-1].copy(), extremes)
        oracle, _ = _serialize_tile(extremes, extremes[::-1].copy(), extremes)
        assert native == oracle

    def test_empty_tile_is_empty_bytes(self, python_native):
        empty = np.array([], dtype=np.int64)
        assert _fast.encode_tile_native(empty, empty, empty) == b""


class TestEngineByteIdentity:
    def test_shards_identical_across_kernels(self, python_native, tmp_path):
        from repro import PowerLawDesign, RunConfig
        from repro.parallel.stream import generate_to_disk

        design = PowerLawDesign([3, 4, 5], "center")
        for budget in (100, 500):
            a = tmp_path / f"numpy-{budget}"
            b = tmp_path / f"native-{budget}"
            generate_to_disk(
                design,
                3,
                a,
                config=RunConfig(
                    memory_budget_entries=budget, kernel="numpy"
                ),
            )
            generate_to_disk(
                design,
                3,
                b,
                config=RunConfig(
                    memory_budget_entries=budget, kernel="native"
                ),
            )
            for rank in range(3):
                name = f"edges.{rank}.tsv"
                assert (a / name).read_bytes() == (b / name).read_bytes()
