"""The paper's exact published numbers, as test oracles.

Every vertex / edge / triangle count quoted in the paper's Section VI
and figure captions is asserted here against our exact calculators.
These are the strongest correctness anchors the reproduction has: the
counts span 30 orders of magnitude and exercise the whole design path.
"""

import pytest

from repro.design import PowerLawDesign

# The paper's Fig. 3/4 "B" prose says m̂={3,4,5,9,16}, but all quoted
# counts require the six-element set with 25 (see DESIGN.md).
B_SIZES = [3, 4, 5, 9, 16, 25]
C_SIZES = [81, 256]
FIG5_SIZES = [3, 4, 5, 9, 16, 25, 81, 256, 625]
FIG7_SIZES = [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]


class TestFig1:
    """Kron of stars m̂=5, 3: the worked degree-distribution example."""

    def test_degree_distribution(self):
        d = PowerLawDesign([5, 3])
        assert d.degree_distribution.to_dict() == {1: 15, 3: 5, 5: 3, 15: 1}

    def test_all_points_on_15_over_d(self):
        d = PowerLawDesign([5, 3])
        for deg, count in d.degree_distribution.items():
            assert deg * count == 15


class TestFig2:
    """Self-loop triangle cases on the m̂={5,3} product."""

    def test_center_loops_give_15_triangles(self):
        assert PowerLawDesign([5, 3], "center").num_triangles == 15

    def test_leaf_loops_give_1_triangle(self):
        # Body text says 1; the figure caption's "3" contradicts it and
        # exact computation (and brute force on the realized graph).
        design = PowerLawDesign([5, 3], "leaf")
        assert design.num_triangles == 1
        assert design.realize().num_triangles() == 1


class TestFig3:
    """The trillion-edge zero-triangle design (plain stars)."""

    def test_b_properties(self):
        b = PowerLawDesign(B_SIZES)
        assert b.num_vertices == 530_400
        assert b.num_edges == 13_824_000

    def test_c_properties(self):
        c = PowerLawDesign(C_SIZES)
        assert c.num_vertices == 21_074
        assert c.num_edges == 82_944

    def test_a_properties(self):
        a = PowerLawDesign(B_SIZES + C_SIZES)
        assert a.num_vertices == 11_177_649_600
        assert a.num_edges == 1_146_617_856_000
        assert a.num_triangles == 0


class TestFig4:
    """The trillion-edge center-loop design with 6.8e12 triangles."""

    def test_b_properties(self):
        b = PowerLawDesign(B_SIZES, "center")
        assert b.num_vertices == 530_400
        assert b.num_edges == 22_160_060

    def test_c_properties(self):
        c = PowerLawDesign(C_SIZES, "center")
        assert c.num_vertices == 21_074
        assert c.num_edges == 83_618

    def test_a_properties(self):
        a = PowerLawDesign(B_SIZES + C_SIZES, "center")
        assert a.num_vertices == 11_177_649_600
        assert a.num_edges == 1_853_002_140_758
        assert a.num_triangles == 6_777_007_252_427

    def test_distribution_totals_reconcile_at_scale(self):
        a = PowerLawDesign(B_SIZES + C_SIZES, "center")
        dist = a.degree_distribution
        assert dist.num_vertices() == 11_177_649_600
        assert dist.total_nnz() == 1_853_002_140_758


class TestFig5:
    """Quadrillion-edge plain design: exact power law, zero triangles."""

    def test_counts(self):
        d = PowerLawDesign(FIG5_SIZES)
        assert d.num_vertices == 6_997_208_649_600
        assert d.num_edges == 1_433_272_320_000_000
        assert d.num_triangles == 0

    def test_exactly_on_power_law(self):
        d = PowerLawDesign(FIG5_SIZES, strict_power_law=True)
        assert d.is_exact_power_law()
        coeff = d.power_law_coefficient
        for deg, count in d.degree_distribution.items():
            assert deg * count == coeff


class TestFig6:
    """Quadrillion-edge center-loop design.

    The paper prints 12,720,651,636,552,426 triangles; exact integer
    arithmetic gives ...427.  The value exceeds 2^53, so the original
    (double-precision) computation could not represent it exactly — we
    assert the exact value and record the paper's in EXPERIMENTS.md.
    """

    def test_counts(self):
        d = PowerLawDesign(FIG5_SIZES, "center")
        assert d.num_vertices == 6_997_208_649_600
        assert d.num_edges == 2_318_105_678_089_508
        assert d.num_triangles == 12_720_651_636_552_427

    def test_paper_value_is_one_off_and_beyond_float53(self):
        d = PowerLawDesign(FIG5_SIZES, "center")
        paper = 12_720_651_636_552_426
        assert d.num_triangles - paper == 1
        assert paper > 2**53

    def test_distribution_deviates_from_line(self):
        from repro.analysis import power_law_deviation
        from repro.analysis.powerlaw import _log10_exact

        d = PowerLawDesign(FIG5_SIZES, "center")
        dev = power_law_deviation(
            d.degree_distribution, 1.0, _log10_exact(d.power_law_coefficient)
        )
        assert dev > 0  # "small deviations above and below the line"


class TestFig7:
    """The decetta-scale (10^30 edge) leaf-loop design."""

    def test_counts(self):
        d = PowerLawDesign(FIG7_SIZES, "leaf")
        assert d.num_vertices == 144_111_718_793_178_936_483_840_000
        assert d.num_edges == 2_705_963_586_782_877_716_483_871_216_764
        assert d.num_triangles == 178_940_587

    def test_computable_quickly(self):
        # The paper computes this "in a few minutes on a laptop"; the
        # closed-form path should take well under a minute here.
        import time

        t0 = time.perf_counter()
        d = PowerLawDesign(FIG7_SIZES, "leaf")
        _ = d.num_vertices, d.num_edges, d.num_triangles
        dist = d.degree_distribution
        elapsed = time.perf_counter() - t0
        assert elapsed < 60
        assert dist.num_vertices() == d.num_vertices
        assert dist.total_nnz() == d.num_edges

    def test_downscaled_variant_validates_end_to_end(self):
        # The same leaf-loop construction at realizable scale agrees with
        # a materialized graph — evidence the 10^30 formulas are right.
        from repro.validate import validate_design

        small = PowerLawDesign([3, 4, 5], "leaf")
        assert validate_design(small).passed


class TestScaledDownEndToEnd:
    """Shrunken versions of the paper's exact constructions validate."""

    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_mini_fig4_construction(self, loop):
        from repro.parallel.generator import generate_design_parallel
        from repro.validate import validate_design

        design = PowerLawDesign([3, 4, 5], loop)
        graph = generate_design_parallel(design, n_ranks=6)
        report = validate_design(design, graph=graph)
        assert report.passed, report.to_text()
