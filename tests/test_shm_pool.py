"""The shared-memory tile pool: lifecycle, zero-copy handoff, leaks.

Ownership contract under test: the coordinator-side
:class:`SharedTilePool` creates and unlinks every segment; workers only
attach.  A clean engine run releases every output segment at commit and
the pool's ``shutdown()`` (run in ``execute``'s ``finally``) reclaims
whatever survives — so ``/dev/shm`` never accumulates segments, no
matter how the run ends.
"""

import numpy as np
import pytest

from repro import PowerLawDesign, RunConfig, VirtualCluster
from repro.errors import GenerationError
from repro.parallel import ParallelKroneckerGenerator
from repro.parallel.backends import MultiprocessingBackend
from repro.parallel.shm import (
    SHM_PREFIX,
    SharedTilePool,
    ShmConsumerFactory,
    ShmTriplesConsumer,
    attach_shared_coo,
    shm_segment_names,
)
from repro.runtime import MetricsRegistry
from repro.sparse import from_dense

DESIGN = PowerLawDesign([3, 4, 5], "center")


@pytest.fixture
def pool():
    p = SharedTilePool()
    yield p
    p.shutdown()


def small_coo(rng):
    return from_dense(rng.integers(0, 3, size=(4, 5)).astype(np.int64))


class TestPoolLifecycle:
    def test_share_and_attach_round_trip(self, pool, rng):
        matrix = small_coo(rng)
        ref = pool.share_coo(matrix)
        attached = attach_shared_coo(ref)
        assert attached.shape == matrix.shape
        np.testing.assert_array_equal(attached.rows, matrix.rows)
        np.testing.assert_array_equal(attached.cols, matrix.cols)
        np.testing.assert_array_equal(attached.vals, matrix.vals)

    def test_attached_views_are_read_only(self, pool, rng):
        attached = attach_shared_coo(pool.share_coo(small_coo(rng)))
        with pytest.raises(ValueError):
            attached.rows[0] = 99

    def test_attach_is_cached_per_process(self, pool, rng):
        ref = pool.share_coo(small_coo(rng))
        assert attach_shared_coo(ref) is attach_shared_coo(ref)

    def test_empty_matrix_needs_no_segment(self, pool):
        empty = np.zeros(0, dtype=np.int64)
        ref = pool.share_coo(
            from_dense(np.zeros((3, 3), dtype=np.int64))
        )
        assert ref.triples.name is None
        attached = attach_shared_coo(ref)
        assert attached.nnz == 0
        np.testing.assert_array_equal(attached.rows, empty)

    def test_consume_take_release_cycle(self, pool):
        ref = pool.allocate_output(10)
        consumer = ShmConsumerFactory(ref)(rank=0)
        a = np.arange(4, dtype=np.int64)
        consumer.consume(a, a + 10, a + 20)
        consumer.consume(a[:2], a[:2] + 10, a[:2] + 20)
        handle = consumer.result()
        assert handle.count == 6
        assert ref.name in pool.outstanding()
        rows, cols, vals = pool.take(handle)
        np.testing.assert_array_equal(rows, [0, 1, 2, 3, 0, 1])
        np.testing.assert_array_equal(cols - 10, rows)
        np.testing.assert_array_equal(vals - 20, rows)
        # take() released the segment: gone from the pool and /dev/shm.
        assert ref.name not in pool.outstanding()
        assert ref.name not in shm_segment_names()

    def test_double_take_raises(self, pool):
        ref = pool.allocate_output(4)
        consumer = ShmTriplesConsumer(ref)
        one = np.ones(1, dtype=np.int64)
        consumer.consume(one, one, one)
        handle = consumer.result()
        pool.take(handle)
        with pytest.raises(GenerationError, match="double take"):
            pool.take(handle)

    def test_overflow_raises(self, pool):
        consumer = ShmTriplesConsumer(pool.allocate_output(3))
        a = np.arange(4, dtype=np.int64)
        with pytest.raises(GenerationError, match="overflow"):
            consumer.consume(a, a, a)
        # The worker loop aborts the consumer on any failure; mirror it
        # so the attachment is dropped before the pool reclaims.
        consumer.abort()

    def test_abort_detaches_without_release(self, pool):
        ref = pool.allocate_output(4)
        consumer = ShmTriplesConsumer(ref)
        consumer.abort()
        # The coordinator still owns (and can reclaim) the segment.
        assert pool.shutdown() == (ref.name,)

    def test_shutdown_reclaims_and_is_idempotent(self, pool):
        names = {pool.allocate_output(2).name, pool.allocate_output(2).name}
        assert set(pool.shutdown()) == names
        assert pool.shutdown() == ()
        assert not any(n in shm_segment_names() for n in names)

    def test_create_after_shutdown_refused(self, pool):
        pool.shutdown()
        with pytest.raises(GenerationError, match="shut down"):
            pool.allocate_output(1)


class TestEngineZeroCopy:
    def _blocks(self, backend):
        gen = ParallelKroneckerGenerator(
            DESIGN.to_chain(),
            VirtualCluster(4, memory_budget_entries=500),
            backend=backend,
        )
        return gen.generate_blocks()

    def test_zero_copy_matches_pickled_and_serial(self):
        serial = self._blocks(None)
        zero_copy = self._blocks(MultiprocessingBackend(processes=2))
        pickled = self._blocks(
            MultiprocessingBackend(processes=2, zero_copy=False)
        )
        for s, z, p in zip(serial, zero_copy, pickled):
            assert s.block.equal(z.block)
            assert s.block.equal(p.block)

    def test_no_segments_survive_a_clean_run(self):
        before = shm_segment_names()
        self._blocks(MultiprocessingBackend(processes=2))
        assert shm_segment_names() == before

    def test_leak_gauge_zero_on_clean_run(self):
        metrics = MetricsRegistry()
        gen = ParallelKroneckerGenerator(
            DESIGN.to_chain(),
            VirtualCluster(4, memory_budget_entries=500),
            backend=MultiprocessingBackend(processes=2),
            metrics=metrics,
        )
        gen.generate_blocks()
        assert metrics.gauge("engine.shm_leaked").value == 0

    def test_shards_byte_identical_with_zero_copy_assembly(self, tmp_path):
        # ShardSink is not a "triples" sink (workers serialize locally),
        # but a zero-copy assembled run must agree with its bytes.
        from repro.parallel.stream import generate_to_disk

        generate_to_disk(
            DESIGN, 4, tmp_path, config=RunConfig(memory_budget_entries=500)
        )
        blocks = self._blocks(MultiprocessingBackend(processes=2))
        total = sum(b.nnz for b in blocks)
        shard_lines = sum(
            len((tmp_path / f"edges.{r}.tsv").read_bytes().splitlines())
            for r in range(4)
        )
        # The streamed run removed the design self-loop; assembly keeps it.
        assert total - 1 == shard_lines == DESIGN.num_edges

    def test_prefix_constant_is_the_leak_scan_key(self):
        pool = SharedTilePool()
        try:
            name = pool.allocate_output(1).name
            assert name.startswith(SHM_PREFIX)
            assert name in shm_segment_names()
        finally:
            pool.shutdown()
