"""Unit tests for sampling never-materialized designs."""

from collections import Counter

import numpy as np
import pytest

from repro.design import (
    PowerLawDesign,
    induced_subgraph,
    sample_edges,
    sample_edges_final,
    sample_vertices,
)
from repro.errors import DesignError

FIG7 = [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]


class TestSampleEdges:
    def test_every_sample_is_a_stored_entry(self, rng):
        design = PowerLawDesign([3, 4])
        chain = design.to_chain()
        for i, j in sample_edges(design, 200, rng=rng):
            assert chain.entry(i, j) == 1

    def test_uniform_over_entries(self):
        design = PowerLawDesign([2, 2])
        stored = {(int(r), int(c)) for r, c, _ in design.realize().adjacency}
        counts = Counter(
            sample_edges(design, 16000, rng=np.random.default_rng(0))
        )
        assert set(counts) == stored
        freqs = np.array(list(counts.values()))
        assert freqs.min() > 0.7 * freqs.mean()

    def test_fig7_scale_sampling(self, rng):
        design = PowerLawDesign(FIG7, "leaf")
        chain = design.to_chain()
        edges = sample_edges(design, 25, rng=rng)
        assert len(edges) == 25
        for i, j in edges:
            assert chain.entry(i, j) == 1
            assert 0 <= i < design.num_vertices

    def test_accepts_chain_directly(self, rng):
        chain = PowerLawDesign([3, 4]).to_chain()
        assert len(sample_edges(chain, 5, rng=rng)) == 5

    def test_zero_count(self, rng):
        assert sample_edges(PowerLawDesign([3]), 0, rng=rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(DesignError):
            sample_edges(PowerLawDesign([3]), -1, rng=rng)

    def test_bad_input_type(self):
        with pytest.raises(DesignError):
            sample_edges("not a design", 1)


class TestSampleEdgesFinal:
    def test_loop_excluded(self):
        design = PowerLawDesign([2, 2], "center")
        edges = sample_edges_final(design, 5000, rng=np.random.default_rng(1))
        assert (0, 0) not in edges
        assert len(edges) == 5000

    def test_plain_design_passthrough(self, rng):
        design = PowerLawDesign([3, 4])
        assert len(sample_edges_final(design, 10, rng=rng)) == 10

    def test_all_samples_in_final_graph(self, rng):
        design = PowerLawDesign([3, 2], "leaf")
        final = design.realize().adjacency
        for i, j in sample_edges_final(design, 300, rng=rng):
            assert final.get(i, j) == 1


class TestSampleVertices:
    def test_range_and_count(self, rng):
        design = PowerLawDesign(FIG7, "leaf")
        vertices = sample_vertices(design, 50, rng=rng)
        assert len(vertices) == 50
        assert all(0 <= v < design.num_vertices for v in vertices)

    def test_uniformity_small(self):
        design = PowerLawDesign([2])
        counts = Counter(
            sample_vertices(design, 9000, rng=np.random.default_rng(2))
        )
        assert set(counts) == {0, 1, 2}
        freqs = np.array(list(counts.values()))
        assert freqs.min() > 0.8 * freqs.mean()


class TestInducedSubgraph:
    def test_matches_dense_submatrix(self):
        design = PowerLawDesign([3, 4])
        ids = [0, 1, 5, 19]
        sub = induced_subgraph(design, ids)
        dense = design.realize().adjacency.to_dense()
        np.testing.assert_array_equal(sub.to_dense(), dense[np.ix_(ids, ids)])

    def test_loop_excluded_for_decorated_designs(self):
        design = PowerLawDesign([3, 2], "center")
        sub = induced_subgraph(design, [0, 1, 2])
        final = design.realize().adjacency.to_dense()
        np.testing.assert_array_equal(sub.to_dense(), final[:3, :3])

    def test_probe_of_fig7_hub_neighborhood(self, rng):
        design = PowerLawDesign(FIG7, "leaf")
        # Vertex 0 (all centers) plus two of its guaranteed neighbors.
        from repro.kron import MixedRadix

        radix = MixedRadix([m + 1 for m in FIG7])
        n1 = radix.encode([1] * len(FIG7))
        n2 = radix.encode([1] * (len(FIG7) - 1) + [2])
        sub = induced_subgraph(design, [0, n1, n2])
        assert sub.get(0, 1) == 1 and sub.get(0, 2) == 1
        assert sub.get(1, 2) == 0  # two leaves-of-leaves are not adjacent

    def test_duplicates_rejected(self):
        with pytest.raises(DesignError):
            induced_subgraph(PowerLawDesign([3]), [0, 0])
