"""Property-based tests, round 3: joints, scrambles, samples, I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import (
    JointDegreeDistribution,
    PowerLawDesign,
    joint_degree_distribution,
    sample_edges,
    sample_vertices,
)
from repro.design.estimate import estimate_resources
from repro.parallel import scramble_permutation
from repro.validate import validate_design

star_sizes = st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3)
loops = st.sampled_from([None, "center", "leaf"])


@st.composite
def joint_maps(draw):
    pairs = st.tuples(st.integers(1, 10), st.integers(1, 10))
    return draw(st.dictionaries(pairs, st.integers(1, 9), min_size=1, max_size=5))


# -- joint distributions -----------------------------------------------------------


@given(joint_maps(), joint_maps())
@settings(max_examples=50, deadline=None)
def test_joint_kron_totals_multiply(da, db):
    a, b = JointDegreeDistribution(da), JointDegreeDistribution(db)
    assert a.kron(b).total_edges() == a.total_edges() * b.total_edges()


@given(star_sizes, loops)
@settings(max_examples=25, deadline=None)
def test_joint_matches_realized(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    if design.raw_nnz > 20_000:
        return
    from collections import Counter

    graph = design.realize()
    degrees = graph.degree_vector()
    measured: Counter = Counter()
    for r, c, _ in graph.adjacency:
        measured[(int(degrees[r]), int(degrees[c]))] += 1
    assert joint_degree_distribution(design) == dict(measured)


@given(star_sizes, loops)
@settings(max_examples=25, deadline=None)
def test_joint_totals_and_symmetry(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    joint = joint_degree_distribution(design)
    assert joint.total_edges() == design.num_edges
    assert joint.is_symmetric()


# -- scrambling -------------------------------------------------------------------


@given(st.integers(1, 500), st.integers(0, 2**32))
@settings(max_examples=80, deadline=None)
def test_scramble_is_bijection(n, seed):
    perm = scramble_permutation(n, seed=seed)
    images = {perm.apply(x) for x in range(n)}
    assert images == set(range(n))


@given(st.integers(2, 10**6), st.integers(0, 2**32), st.integers(0, 10**6))
@settings(max_examples=80, deadline=None)
def test_scramble_roundtrip(n, seed, x):
    x = x % n
    perm = scramble_permutation(n, seed=seed)
    assert perm.invert(perm.apply(x)) == x


# -- sampling ---------------------------------------------------------------------


@given(star_sizes, loops, st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_samples_are_stored_entries(sizes, loop, count):
    design = PowerLawDesign(sizes, loop)
    chain = design.to_chain()
    rng = np.random.default_rng(0)
    for i, j in sample_edges(design, count, rng=rng):
        assert chain.entry(i, j) != 0
    for v in sample_vertices(design, count, rng=rng):
        assert 0 <= v < design.num_vertices


# -- resource estimates ----------------------------------------------------------------


@given(star_sizes, loops)
@settings(max_examples=40, deadline=None)
def test_estimate_consistency(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    est = estimate_resources(design)
    assert est.coo_bytes == design.num_edges * 24
    assert est.coo_bytes >= est.csr_bytes * 24 // 16 - 1
    assert est.fits_in(est.coo_bytes)
    assert not est.fits_in(est.coo_bytes - 1) or design.num_edges == 0


# -- deep validation closes the loop -----------------------------------------------------


@given(st.lists(st.integers(1, 4), min_size=1, max_size=3), loops)
@settings(max_examples=15, deadline=None)
def test_deep_validation_passes(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    if design.raw_nnz > 10_000:
        return
    report = validate_design(design, deep=True)
    assert report.passed, report.to_text()
    assert report.wedges_match is True
    assert report.joint_match is True


# -- mtx roundtrip over random matrices ----------------------------------------------------


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_mtx_roundtrip_random(tmp_path_factory, data):
    from repro.io.mtx import read_mtx, write_mtx
    from repro.sparse import from_dense

    n = data.draw(st.integers(1, 6))
    m = data.draw(st.integers(1, 6))
    rows = data.draw(
        st.lists(
            st.lists(st.integers(0, 3), min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    matrix = from_dense(np.asarray(rows, dtype=np.int64))
    path = tmp_path_factory.mktemp("mtx") / "m.mtx"
    write_mtx(path, matrix)
    assert read_mtx(path).equal(matrix)
