"""Unit tests for streaming (out-of-core) generation and validation."""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.errors import GenerationError
from repro.parallel import (
    StreamingDegreeAccumulator,
    generate_to_disk,
    read_streamed_degree_distribution,
    streamed_degree_distribution,
    validate_streamed,
)


class TestStreamingAccumulator:
    def test_accumulates_across_blocks(self):
        acc = StreamingDegreeAccumulator(4)
        acc.add_block_rows(np.array([0, 0, 1]))
        acc.add_block_rows(np.array([0, 2]))
        assert acc.distribution().to_dict() == {0: 1, 1: 2, 3: 1}
        assert acc.edges_seen == 5

    def test_empty_block_is_noop(self):
        acc = StreamingDegreeAccumulator(3)
        acc.add_block_rows(np.empty(0, dtype=np.int64))
        assert acc.edges_seen == 0

    def test_loop_removal(self):
        acc = StreamingDegreeAccumulator(2)
        acc.add_block_rows(np.array([0, 0]))
        acc.remove_self_loop(0)
        assert acc.distribution().to_dict() == {0: 1, 1: 1}

    def test_loop_removal_requires_entries(self):
        acc = StreamingDegreeAccumulator(2)
        with pytest.raises(GenerationError):
            acc.remove_self_loop(1)

    def test_rejects_empty_graph(self):
        with pytest.raises(GenerationError):
            StreamingDegreeAccumulator(0)


class TestStreamedDistribution:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_matches_design_prediction(self, loop):
        design = PowerLawDesign([3, 4, 5], loop)
        dist = streamed_degree_distribution(design, 6)
        assert dist == design.degree_distribution

    def test_validate_streamed(self):
        check = validate_streamed(PowerLawDesign([3, 4, 5, 9], "center"), 8)
        assert check.exact_match, check.to_text()

    def test_matches_in_memory_measurement(self):
        design = PowerLawDesign([3, 4, 2])
        streamed = streamed_degree_distribution(design, 4)
        assert streamed == design.realize().degree_distribution()


class TestGenerateToDisk:
    def test_files_written_and_counts_reconcile(self, tmp_path):
        design = PowerLawDesign([3, 4, 5], "center")
        summary = generate_to_disk(design, 5, tmp_path)
        assert summary.n_ranks == 5
        assert len(summary.files) == 5
        assert summary.total_edges == design.num_edges
        assert 0 < summary.peak_block_fraction < 1

    def test_loop_absent_from_files(self, tmp_path):
        design = PowerLawDesign([3, 2], "center")
        summary = generate_to_disk(design, 2, tmp_path)
        for path in summary.files:
            for line in open(path):
                r, c, _ = line.split("\t")
                assert not (r == c == "0")

    def test_files_reproduce_distribution(self, tmp_path):
        design = PowerLawDesign([3, 4, 5], "leaf")
        summary = generate_to_disk(design, 4, tmp_path)
        dist = read_streamed_degree_distribution(summary.files, design.num_vertices)
        assert dist == design.degree_distribution

    def test_files_equal_direct_realization(self, tmp_path):
        from repro.io import read_rank_files

        design = PowerLawDesign([3, 4, 2])
        generate_to_disk(design, 3, tmp_path)
        merged = read_rank_files(tmp_path, (design.num_vertices, design.num_vertices))
        assert merged.equal(design.realize().adjacency)
