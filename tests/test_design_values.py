"""Unit tests for exact value (edge-weight) distributions."""

import numpy as np
import pytest

from repro.design import ValueDistribution, total_weight_of_chain, value_distribution
from repro.errors import DesignError
from repro.graphs import star_adjacency
from repro.kron import kron_chain
from repro.sparse import from_dense, from_triples
from tests.conftest import random_dense


class TestValueDistribution:
    def test_from_matrix(self):
        m = from_triples((2, 2), [0, 0, 1], [0, 1, 1], [3, 3, 7])
        assert ValueDistribution.from_matrix(m).to_dict() == {3: 2, 7: 1}

    def test_rejects_value_zero(self):
        with pytest.raises(DesignError):
            ValueDistribution({0: 3})

    def test_rejects_negative_count(self):
        with pytest.raises(DesignError):
            ValueDistribution({1: -1})

    def test_totals(self):
        d = ValueDistribution({2: 3, 5: 1})
        assert d.total_nnz() == 4
        assert d.total_weight() == 11

    def test_kron(self):
        a = ValueDistribution({2: 1, 3: 2})
        b = ValueDistribution({5: 4})
        assert a.kron(b).to_dict() == {10: 4, 15: 8}

    def test_kron_collisions_accumulate(self):
        a = ValueDistribution({2: 1, 4: 1})
        b = ValueDistribution({2: 1, 1: 1})
        # products: 4, 2, 8, 4
        assert a.kron(b).to_dict() == {2: 1, 4: 2, 8: 1}

    def test_negative_values_allowed(self):
        a = ValueDistribution({-1: 2, 3: 1})
        out = a.kron(ValueDistribution({-2: 1}))
        assert out.to_dict() == {2: 2, -6: 1}

    def test_equality_with_dict(self):
        assert ValueDistribution({1: 2}) == {1: 2}

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(ValueDistribution({1: 1}))


class TestChainValueDistribution:
    def test_pattern_chain_is_all_ones(self):
        mats = [star_adjacency(3), star_adjacency(4)]
        dist = value_distribution(mats)
        assert dist.to_dict() == {1: 6 * 8}

    def test_weighted_chain_matches_realized(self, rng):
        mats = [from_dense(random_dense(rng, 4, 4)) for _ in range(3)]
        if any(m.nnz == 0 for m in mats):
            pytest.skip("degenerate draw")
        predicted = value_distribution(mats)
        realized = ValueDistribution.from_matrix(kron_chain(mats))
        assert predicted == realized

    def test_total_weight_identity(self, rng):
        mats = [from_dense(random_dense(rng, 3, 3)) for _ in range(3)]
        product = kron_chain(mats)
        assert total_weight_of_chain(mats) == product.sum()

    def test_total_nnz_matches_edges(self):
        mats = [star_adjacency(5), star_adjacency(3)]
        assert value_distribution(mats).total_nnz() == 60

    def test_empty_constituent_list_rejected(self):
        with pytest.raises(DesignError):
            value_distribution([])
        with pytest.raises(DesignError):
            total_weight_of_chain([])

    def test_huge_weighted_design_exact(self):
        # Weighted stars with weight-5 spokes at Fig-5 scale: the value
        # histogram of a 10^15-entry product computes instantly.
        mats = []
        sizes = [3, 4, 5, 9, 16, 25, 81, 256, 625]
        dists = []
        for m in sizes:
            dists.append(ValueDistribution({5: 2 * m}))
        dist = ValueDistribution.kron_all(dists)
        assert dist.total_nnz() == 1_433_272_320_000_000
        assert dist.to_dict() == {5**9: 1_433_272_320_000_000}
