"""Unit tests for sparse constructors, conversions, and reductions."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import (
    col_degrees,
    degrees,
    eye,
    from_dense,
    from_edges,
    from_triples,
    random_sparse,
    row_degrees,
    to_dense,
    total_sum,
    trace,
    zeros,
)
from repro.sparse.convert import as_coo, from_scipy, to_scipy
from tests.conftest import random_dense


class TestConstructors:
    def test_eye(self):
        np.testing.assert_array_equal(eye(3).to_dense(), np.eye(3, dtype=np.int64))

    def test_zeros(self):
        assert zeros((2, 5)).nnz == 0

    def test_from_triples_pattern_default(self):
        m = from_triples((2, 2), [0, 1], [1, 0])
        assert m.get(0, 1) == 1 and m.get(1, 0) == 1

    def test_from_edges_undirected(self):
        m = from_edges(3, [(0, 1), (1, 2)])
        assert m.is_symmetric()
        assert m.nnz == 4

    def test_from_edges_self_loop_stored_once(self):
        m = from_edges(2, [(0, 0)])
        assert m.nnz == 1
        assert m.get(0, 0) == 1

    def test_from_edges_duplicates_clamped_to_one(self):
        m = from_edges(2, [(0, 1), (0, 1), (1, 0)])
        assert m.get(0, 1) == 1 and m.get(1, 0) == 1

    def test_from_edges_directed(self):
        m = from_edges(3, [(0, 1)], undirected=False)
        assert m.nnz == 1

    def test_from_edges_empty(self):
        assert from_edges(4, []).nnz == 0

    def test_from_edges_bad_shape(self):
        with pytest.raises(ShapeError):
            from_edges(3, np.array([[0, 1, 2]]))

    def test_random_sparse_density(self, rng):
        m = random_sparse((30, 30), 0.2, rng=rng)
        assert m.nnz == round(0.2 * 900)

    def test_random_sparse_zero_density(self, rng):
        assert random_sparse((5, 5), 0.0, rng=rng).nnz == 0

    def test_random_sparse_full_density(self, rng):
        assert random_sparse((4, 4), 1.0, rng=rng).nnz == 16

    def test_random_sparse_bad_density(self, rng):
        with pytest.raises(ValueError):
            random_sparse((3, 3), 1.5, rng=rng)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            from_dense(np.array([1, 2, 3]))


class TestConversions:
    def test_dense_roundtrip(self, rng):
        A = random_dense(rng, 5, 7)
        np.testing.assert_array_equal(to_dense(from_dense(A)), A)

    def test_to_dense_passthrough_ndarray(self):
        A = np.eye(2)
        assert to_dense(A) is A

    def test_as_coo_from_csr_and_csc(self, rng):
        A = random_dense(rng, 4, 4)
        m = from_dense(A)
        assert as_coo(m.to_csr()).equal(m)
        assert as_coo(m.to_csc()).equal(m)

    def test_as_coo_rejects_junk(self):
        with pytest.raises(FormatError):
            as_coo("not a matrix")

    def test_scipy_roundtrip(self, rng):
        A = random_dense(rng, 6, 6)
        m = from_dense(A)
        assert from_scipy(to_scipy(m)).equal(m)

    def test_scipy_oracle_matmul(self, rng):
        # Independent cross-check of our SpGEMM against SciPy.
        A = random_dense(rng, 8, 8)
        B = random_dense(rng, 8, 8)
        ours = from_dense(A).matmul(from_dense(B))
        theirs = (to_scipy(from_dense(A)).tocsr() @ to_scipy(from_dense(B)).tocsr()).toarray()
        np.testing.assert_array_equal(ours.to_dense(), theirs)


class TestLinalg:
    def test_row_col_degrees(self):
        A = np.array([[1, 1, 0], [0, 0, 0], [1, 0, 1]])
        m = from_dense(A)
        np.testing.assert_array_equal(row_degrees(m), [2, 0, 2])
        np.testing.assert_array_equal(col_degrees(m), [2, 1, 1])

    def test_degrees_requires_square(self):
        with pytest.raises(ShapeError):
            degrees(zeros((2, 3)))

    def test_total_sum(self, rng):
        A = random_dense(rng, 6, 6)
        assert total_sum(from_dense(A)) == A.sum()

    def test_trace(self):
        A = np.array([[2, 1], [0, 5]])
        assert trace(from_dense(A)) == 7

    def test_trace_empty_diagonal(self):
        assert trace(from_triples((2, 2), [0], [1], [3])) == 0

    def test_trace_requires_square(self):
        with pytest.raises(ShapeError):
            trace(zeros((2, 3)))
