"""WorkQueueScheduler ordering and the shared duplicate-rank guard."""

import pytest

from repro.engine import StaticScheduler, WorkQueueScheduler
from repro.engine.plan import RankTask
from repro.errors import GenerationError


def _tasks(entries):
    return [
        RankTask(rank=i, assignment=None, estimated_entries=e)
        for i, e in enumerate(entries)
    ]


class TestWorkQueueOrder:
    def test_lpt_order_longest_first(self):
        tasks = _tasks([10, 50, 30])
        order = WorkQueueScheduler().order(tasks)
        assert [t.rank for t in order] == [1, 2, 0]

    def test_ties_break_by_rank(self):
        tasks = _tasks([20, 20, 20])
        order = WorkQueueScheduler().order(tasks)
        assert [t.rank for t in order] == [0, 1, 2]

    def test_order_accepts_budget_keyword(self):
        tasks = _tasks([1, 2])
        order = WorkQueueScheduler().order(tasks, memory_budget_entries=100)
        assert [t.rank for t in order] == [1, 0]

    def test_empty_task_list(self):
        assert WorkQueueScheduler().order([]) == []
        assert WorkQueueScheduler().schedule([]) == []

    def test_streaming_flag_set(self):
        assert WorkQueueScheduler.streaming is True
        assert not getattr(StaticScheduler(), "streaming", False)

    def test_schedule_yields_singleton_batches_in_lpt_order(self):
        tasks = _tasks([10, 50, 30])
        batches = WorkQueueScheduler().schedule(tasks)
        assert [len(b) for b in batches] == [1, 1, 1]
        assert [b[0].rank for b in batches] == [1, 2, 0]


class TestMaxInFlight:
    def test_default_is_none(self):
        assert WorkQueueScheduler().max_in_flight is None

    def test_explicit_value_kept(self):
        assert WorkQueueScheduler(max_in_flight=3).max_in_flight == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_value_rejected(self, bad):
        with pytest.raises(GenerationError, match="max_in_flight"):
            WorkQueueScheduler(max_in_flight=bad)


class TestDuplicateRankGuard:
    """Regression: a duplicated rank must fail fast in every scheduler."""

    def _duped(self):
        return [
            RankTask(rank=0, assignment=None, estimated_entries=5),
            RankTask(rank=1, assignment=None, estimated_entries=5),
            RankTask(rank=0, assignment=None, estimated_entries=7),
        ]

    def test_static_schedule_rejects_duplicates(self):
        with pytest.raises(GenerationError, match=r"duplicate rank\(s\).*\[0\]"):
            StaticScheduler().schedule(self._duped())

    def test_queue_order_rejects_duplicates(self):
        with pytest.raises(GenerationError, match=r"duplicate rank\(s\).*\[0\]"):
            WorkQueueScheduler().order(self._duped())

    def test_queue_schedule_rejects_duplicates(self):
        with pytest.raises(GenerationError, match=r"duplicate rank\(s\).*\[0\]"):
            WorkQueueScheduler().schedule(self._duped())

    def test_unique_ranks_pass(self):
        batches = StaticScheduler().schedule(_tasks([5, 5, 7]))
        assert [t.rank for b in batches for t in b] == [0, 1, 2]
