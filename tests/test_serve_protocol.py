"""Protocol conformance suite for the graph service (repro.serve).

Exercises the failure surface the server promises: malformed requests,
unknown digests, invalid tile ranges, oversized asks, saturation,
single-flight cold computes, ETag revalidation, and mid-stream client
disconnects leaving nothing behind.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.errors import ServeError, ServeProtocolError
from repro.net.codec import (
    FRAME_ABORT,
    FRAME_COMMIT,
    FRAME_OPEN,
    FRAME_RESULT,
    FRAME_TILE,
    encode_control_payload,
    encode_frame,
)
from repro.parallel.shm import shm_segment_names
from repro.runtime import MetricsRegistry
from repro.serve import (
    FrameAssembler,
    ServeClient,
    ServerConfig,
    TileStream,
    start_in_thread,
)

SPEC = {"star_sizes": [3, 4, 5], "self_loop": "center", "model": "kron"}


@pytest.fixture
def server(tmp_path):
    metrics = MetricsRegistry()
    handle = start_in_thread(
        ServerConfig(
            cache_dir=str(tmp_path / "cache"),
            ranks=2,
            max_tiles_per_request=64,
            max_body_bytes=4096,
            request_timeout_s=10.0,
        ),
        metrics=metrics,
    )
    handle.metrics = metrics
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServeClient(server.base_url) as c:
        yield c


def _raw_request(port, payload: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class TestMalformedRequests:
    def test_malformed_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST",
            "/v1/design",
            body=b"{this is not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert "not JSON" in json.loads(response.read())["error"]
        conn.close()

    def test_non_object_spec_is_422(self, client):
        with pytest.raises(ServeError) as err:
            client.post_design([1, 2, 3])
        assert err.value.status == 422

    def test_invalid_star_sizes_is_422(self, client):
        with pytest.raises(ServeError) as err:
            client.post_design({"star_sizes": ["three"]})
        assert err.value.status == 422

    def test_unknown_spec_field_is_422(self, client):
        with pytest.raises(ServeError) as err:
            client.post_design({**SPEC, "frobnicate": 1})
        assert err.value.status == 422

    def test_unknown_model_is_422(self, client):
        with pytest.raises(ServeError) as err:
            client.post_design({**SPEC, "model": "erdos"})
        assert err.value.status == 422

    def test_garbage_request_line_is_400(self, server):
        raw = _raw_request(server.port, b"COMPLETE NONSENSE\r\n\r\n")
        assert b"400" in raw.split(b"\r\n", 1)[0]

    def test_oversized_body_is_413(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/design", body=b"x" * 8192)
        response = conn.getresponse()
        assert response.status == 413
        conn.close()

    def test_unknown_path_is_404(self, client):
        status, _, body = client._request("GET", "/v2/everything")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, _, _ = client._request("DELETE", "/v1/health")
        assert status == 405


class TestUnknownDigests:
    def test_design_get_unknown_digest_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.get_design("sha256:" + "0" * 64)
        assert err.value.status == 404

    def test_tiles_unknown_digest_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.fetch_tiles("sha256:" + "0" * 64, 0)
        assert err.value.status == 404

    def test_malformed_digest_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.get_design("not-a-digest!")
        assert err.value.status == 404


class TestBadRanges:
    @pytest.fixture
    def digest(self, client):
        return client.post_design(SPEC)["digest"]

    def test_non_integer_rank_is_422(self, client, digest):
        status, _, _ = client._request("GET", f"/v1/tiles/{digest}/zero")
        assert status == 422

    def test_rank_out_of_range_is_422(self, client, digest):
        for rank in (-1, 2, 99):
            with pytest.raises(ServeError) as err:
                client.fetch_tiles(digest, rank, ranks=2)
            assert err.value.status == 422

    def test_negative_start_is_422(self, client, digest):
        with pytest.raises(ServeError) as err:
            client.fetch_tiles(digest, 0, start=-1)
        assert err.value.status == 422

    def test_empty_range_is_422(self, client, digest):
        with pytest.raises(ServeError) as err:
            client.fetch_tiles(digest, 0, start=5, stop=5)
        assert err.value.status == 422

    def test_non_integer_query_param_is_422(self, client, digest):
        status, _, _ = client._request(
            "GET", f"/v1/tiles/{digest}/0?start=soon"
        )
        assert status == 422

    def test_bad_ranks_param_is_422(self, client, digest):
        with pytest.raises(ServeError) as err:
            client.fetch_tiles(digest, 0, ranks=0)
        assert err.value.status == 422

    def test_oversized_explicit_range_is_413(self, client, digest):
        # The fixture server caps max_tiles_per_request at 64.
        with pytest.raises(ServeError) as err:
            client.fetch_tiles(digest, 0, start=0, stop=1000)
        assert err.value.status == 413


class TestSingleFlight:
    def test_concurrent_identical_cold_requests_compute_once(
        self, server, monkeypatch
    ):
        import repro.serve.app as app_module

        gate = threading.Event()
        calls = []
        original = app_module._compute_analytic

        def gated(catalog, subject, include_participation):
            calls.append(1)
            assert gate.wait(timeout=30)
            return original(catalog, subject, include_participation)

        monkeypatch.setattr(app_module, "_compute_analytic", gated)

        results = {}

        def _post(slot):
            with ServeClient(server.base_url) as c:
                results[slot] = c.post_design(SPEC)

        threads = [
            threading.Thread(target=_post, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        # Both requests must be parked on the same in-flight compute.
        deadline = time.monotonic() + 10
        while len(calls) < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.2)  # give the second request time to coalesce
        gate.set()
        for thread in threads:
            thread.join(timeout=30)

        assert len(results) == 2
        assert results[0]["digest"] == results[1]["digest"]
        assert results[0]["record"] == results[1]["record"]
        assert len(calls) == 1, "cold compute ran more than once"
        computes = server.metrics.counter("serve.design_computes").snapshot()
        assert computes == 1


class TestSaturation:
    def test_429_when_concurrency_exhausted(self, tmp_path, monkeypatch):
        import repro.serve.app as app_module

        metrics = MetricsRegistry()
        gate = threading.Event()
        handle = start_in_thread(
            ServerConfig(cache_dir=str(tmp_path / "c"), max_concurrency=1),
            metrics=metrics,
        )
        try:
            original = app_module._compute_analytic

            def gated(catalog, subject, include_participation):
                assert gate.wait(timeout=30)
                return original(catalog, subject, include_participation)

            monkeypatch.setattr(app_module, "_compute_analytic", gated)

            holder_result = {}

            def _hold():
                with ServeClient(handle.base_url) as c:
                    holder_result["reply"] = c.post_design(SPEC)

            holder = threading.Thread(target=_hold)
            holder.start()
            deadline = time.monotonic() + 10
            gauge = metrics.gauge("serve.active_requests")
            while gauge.snapshot() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gauge.snapshot() == 1

            with ServeClient(handle.base_url) as c:
                with pytest.raises(ServeError) as err:
                    c.health()
            assert err.value.status == 429
            assert metrics.counter("serve.rejected_busy").snapshot() == 1

            gate.set()
            holder.join(timeout=30)
            assert holder_result["reply"]["digest"].startswith("sha256:")
        finally:
            gate.set()
            handle.stop()


class TestDisconnect:
    def test_mid_stream_disconnect_leaves_nothing_behind(self, server, client):
        digest = client.post_design(SPEC)["digest"]
        # Sanity: a full fetch works (many tiles, via a tiny budget).
        full = client.fetch_tiles(digest, 0, ranks=2, budget=100)
        assert len(full.tiles) > 1

        # Now open the same stream raw and slam the socket shut after
        # the first bytes arrive.
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(
                f"GET /v1/tiles/{digest}/0?ranks=2&budget=100 HTTP/1.1\r\n"
                f"Host: localhost\r\n\r\n".encode()
            )
            assert sock.recv(64)  # the response headers started
            # SO_LINGER with zero timeout makes close() send RST — a
            # real mid-stream disconnect, not a polite FIN handshake.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )

        deadline = time.monotonic() + 10
        open_streams = server.metrics.gauge("serve.open_streams")
        active = server.metrics.gauge("serve.active_requests")
        while (
            open_streams.snapshot() > 0 or active.snapshot() > 0
        ) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert open_streams.snapshot() == 0
        assert active.snapshot() == 0
        assert shm_segment_names() == ()
        # The server is still perfectly healthy for the next client.
        assert client.health()["status"] == "ok"
        again = client.fetch_tiles(digest, 0, ranks=2, budget=100)
        assert again.rows.tobytes() == full.rows.tobytes()


class TestCaching:
    def test_etag_revalidation_304(self, client):
        reply = client.post_design(SPEC)
        served = client.get_design(reply["digest"])
        assert served.etag is not None
        assert served.doc["cached"] is True
        again = client.get_design(reply["digest"], etag=served.etag)
        assert again.status == 304
        assert again.doc is None

    def test_warm_get_never_computes(self, server, client):
        digest = client.post_design(SPEC)["digest"]
        before = server.metrics.counter("serve.design_computes").snapshot()
        for _ in range(5):
            assert client.get_design(digest).doc["cached"] is True
        after = server.metrics.counter("serve.design_computes").snapshot()
        assert after == before


class TestStreamStateMachine:
    """Client-side protocol enforcement, no server involved."""

    def _frames(self, *frames) -> bytes:
        return b"".join(frames)

    def test_torn_trailing_frame_raises(self):
        assembler = FrameAssembler()
        frame = encode_frame(FRAME_OPEN, encode_control_payload({"start": 0}))
        assembler.feed(frame[: len(frame) - 3])
        with pytest.raises(ServeProtocolError):
            assembler.finish()

    def test_byte_at_a_time_reassembly(self):
        frame = encode_frame(FRAME_OPEN, encode_control_payload({"start": 0}))
        assembler = FrameAssembler()
        out = []
        for i in range(len(frame)):
            out.extend(assembler.feed(frame[i : i + 1]))
        assert len(out) == 1
        assert out[0].frame_type == FRAME_OPEN

    def test_frame_before_open_raises(self):
        stream = TileStream()
        (frame,) = FrameAssembler().feed(
            encode_frame(FRAME_COMMIT, encode_control_payload({}))
        )
        with pytest.raises(ServeProtocolError, match="before OPEN"):
            stream.accept(frame)

    def test_abort_frame_raises(self):
        stream = TileStream()
        frames = FrameAssembler().feed(
            self._frames(
                encode_frame(FRAME_OPEN, encode_control_payload({"start": 0})),
                encode_frame(
                    FRAME_ABORT, encode_control_payload({"error": "boom"})
                ),
            )
        )
        stream.accept(frames[0])
        with pytest.raises(ServeProtocolError, match="boom"):
            stream.accept(frames[1])

    def test_non_contiguous_tile_indices_raise(self):
        import numpy as np

        from repro.net.codec import encode_tile_payload

        tile = encode_tile_payload(
            np.array([0]), np.array([0]), np.array([1])
        )
        frames = FrameAssembler().feed(
            self._frames(
                encode_frame(FRAME_OPEN, encode_control_payload({"start": 0})),
                encode_frame(FRAME_TILE, tile, rank=0, tile_index=0),
                encode_frame(FRAME_TILE, tile, rank=0, tile_index=2),
            )
        )
        stream = TileStream()
        stream.accept(frames[0])
        stream.accept(frames[1])
        with pytest.raises(ServeProtocolError, match="non-contiguous"):
            stream.accept(frames[2])

    def test_commit_stats_mismatch_raises(self):
        frames = FrameAssembler().feed(
            self._frames(
                encode_frame(FRAME_OPEN, encode_control_payload({"start": 0})),
                encode_frame(
                    FRAME_COMMIT,
                    encode_control_payload({"tiles": 7, "nnz": 0}),
                ),
            )
        )
        stream = TileStream()
        stream.accept(frames[0])
        with pytest.raises(ServeProtocolError, match="COMMIT claims"):
            stream.accept(frames[1])

    def test_truncated_stream_raises_at_result(self):
        stream = TileStream()
        for frame in FrameAssembler().feed(
            encode_frame(FRAME_OPEN, encode_control_payload({"start": 0}))
        ):
            stream.accept(frame)
        with pytest.raises(ServeProtocolError, match="truncated"):
            stream.result()

    def test_result_before_commit_raises(self):
        frames = FrameAssembler().feed(
            self._frames(
                encode_frame(FRAME_OPEN, encode_control_payload({"start": 0})),
                encode_frame(FRAME_RESULT, encode_control_payload({})),
            )
        )
        stream = TileStream()
        stream.accept(frames[0])
        with pytest.raises(ServeProtocolError, match="before COMMIT"):
            stream.accept(frames[1])
