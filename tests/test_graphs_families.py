"""Unit tests for the classic graph families."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.graphs import (
    Graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
)
from repro.sparse.linalg import degrees


class TestCompleteBipartite:
    def test_star_special_case(self):
        from repro.graphs import star_adjacency

        # K_{1,m̂} with the center first is exactly our star layout.
        assert complete_bipartite(1, 4).equal(star_adjacency(4))

    def test_counts(self):
        m = complete_bipartite(2, 3)
        assert m.shape == (5, 5)
        assert m.nnz == 2 * 2 * 3

    def test_no_intra_side_edges(self):
        m = complete_bipartite(2, 3)
        dense = m.to_dense()
        assert dense[:2, :2].sum() == 0
        assert dense[2:, 2:].sum() == 0

    def test_symmetric(self):
        assert complete_bipartite(3, 4).is_symmetric()

    def test_no_triangles(self):
        assert Graph(complete_bipartite(3, 4)).num_triangles() == 0

    def test_rejects_empty_side(self):
        with pytest.raises(DesignError):
            complete_bipartite(0, 3)


class TestPath:
    def test_degrees(self):
        np.testing.assert_array_equal(degrees(path_graph(4)), [1, 2, 2, 1])

    def test_single_vertex(self):
        assert path_graph(1).nnz == 0

    def test_rejects_zero(self):
        with pytest.raises(DesignError):
            path_graph(0)


class TestCycle:
    def test_all_degree_two(self):
        np.testing.assert_array_equal(degrees(cycle_graph(5)), [2] * 5)

    def test_triangle_is_c3(self):
        assert Graph(cycle_graph(3)).num_triangles() == 1

    def test_c4_has_no_triangles(self):
        assert Graph(cycle_graph(4)).num_triangles() == 0

    def test_rejects_short_cycle(self):
        with pytest.raises(DesignError):
            cycle_graph(2)


class TestComplete:
    def test_k4_triangle_count(self):
        assert Graph(complete_graph(4)).num_triangles() == 4

    def test_kn_triangles_binomial(self):
        n = 6
        assert Graph(complete_graph(n)).num_triangles() == n * (n - 1) * (n - 2) // 6

    def test_k1(self):
        assert complete_graph(1).nnz == 0

    def test_rejects_zero(self):
        with pytest.raises(DesignError):
            complete_graph(0)


class TestEmpty:
    def test_empty(self):
        g = Graph(empty_graph(5))
        assert g.num_edges == 0
        assert g.num_empty_vertices() == 5

    def test_rejects_negative(self):
        with pytest.raises(DesignError):
            empty_graph(-1)
