"""Unit tests for centrality measures and triangle enumeration."""

import numpy as np
import pytest

from repro.analysis import (
    betweenness_centrality,
    count_by_enumeration,
    degree_centrality,
    eigenvector_centrality,
    enumerate_triangles,
    iter_triangles,
    top_k_vertices,
)
from repro.design import PowerLawDesign
from repro.errors import ValidationError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    star_adjacency,
)
from repro.kron import kron
from repro.sparse import from_edges, from_triples


def _nx_graph(graph: Graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    for r, c, _ in graph.adjacency:
        if r < c:
            G.add_edge(int(r), int(c))
    return G


class TestDegreeCentrality:
    def test_star_center_dominates(self):
        scores = degree_centrality(Graph(star_adjacency(5)))
        assert scores[0] == pytest.approx(1.0)
        assert np.all(scores[1:] == pytest.approx(0.2))

    def test_single_vertex(self):
        assert degree_centrality(Graph(empty_graph(1))).tolist() == [0.0]


class TestEigenvectorCentrality:
    def test_regular_graph_uniform(self):
        scores = eigenvector_centrality(Graph(cycle_graph(6)))
        assert np.allclose(scores, scores[0])

    def test_star_center_highest(self):
        scores = eigenvector_centrality(Graph(star_adjacency(6)))
        assert scores[0] > scores[1] > 0

    def test_requires_symmetric(self):
        with pytest.raises(ValidationError):
            eigenvector_centrality(Graph(from_triples((2, 2), [0], [1], [1])))

    def test_empty_graph_uniform(self):
        scores = eigenvector_centrality(Graph(empty_graph(4)))
        assert np.allclose(scores, 0.5)


class TestBetweenness:
    @pytest.mark.parametrize(
        "matrix",
        [
            star_adjacency(5),
            path_graph(6),
            cycle_graph(7),
            complete_graph(5),
            kron(star_adjacency(3), star_adjacency(2)),
        ],
        ids=["star", "path", "cycle", "complete", "kron"],
    )
    def test_matches_networkx(self, matrix):
        import networkx as nx

        g = Graph(matrix)
        ours = betweenness_centrality(g)
        theirs = nx.betweenness_centrality(_nx_graph(g))
        np.testing.assert_allclose(
            ours, [theirs[i] for i in range(g.num_vertices)], atol=1e-12
        )

    def test_unnormalized(self):
        # Path 0-1-2: the middle vertex lies on the single 0..2 path.
        scores = betweenness_centrality(Graph(path_graph(3)), normalized=False)
        np.testing.assert_allclose(scores, [0.0, 1.0, 0.0])

    def test_star_center_carries_all_paths(self):
        scores = betweenness_centrality(Graph(star_adjacency(6)), normalized=True)
        assert scores[0] == pytest.approx(1.0)
        assert np.all(scores[1:] == 0)

    def test_disconnected_components_contribute_zero_cross_pairs(self):
        g = Graph(from_edges(4, [(0, 1), (2, 3)]))
        scores = betweenness_centrality(g, normalized=False)
        np.testing.assert_allclose(scores, 0.0)

    def test_requires_symmetric(self):
        with pytest.raises(ValidationError):
            betweenness_centrality(Graph(from_triples((2, 2), [0], [1], [1])))


class TestTopK:
    def test_ordering(self):
        top = top_k_vertices(np.array([0.1, 0.9, 0.5]), k=2)
        assert top == [(1, pytest.approx(0.9)), (2, pytest.approx(0.5))]

    def test_k_larger_than_n(self):
        assert len(top_k_vertices(np.array([1.0]), k=5)) == 1


class TestEnumeration:
    def test_k4_triangles(self):
        tris = enumerate_triangles(Graph(complete_graph(4)))
        assert tris == [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]

    def test_triangle_free(self):
        assert enumerate_triangles(Graph(star_adjacency(6))) == []

    def test_count_matches_design_prediction(self):
        for sizes, loop in ([[5, 3], "center"], [[5, 3], "leaf"], [[3, 4, 2], "center"]):
            design = PowerLawDesign(sizes, loop)
            graph = design.realize()
            assert count_by_enumeration(graph) == design.num_triangles

    def test_enumerated_triples_are_actual_triangles(self):
        design = PowerLawDesign([3, 4], "center")
        graph = design.realize()
        adj = graph.adjacency
        for a, b, c in iter_triangles(graph):
            assert adj.get(a, b) and adj.get(b, c) and adj.get(a, c)
            assert a < b < c

    def test_limit_enforced(self):
        with pytest.raises(ValidationError):
            enumerate_triangles(Graph(complete_graph(5)), limit=3)

    def test_rejects_loops(self):
        with pytest.raises(ValidationError):
            enumerate_triangles(Graph(star_adjacency(3, "center")))

    def test_no_duplicate_triangles(self):
        design = PowerLawDesign([2, 3, 4], "center")
        tris = enumerate_triangles(design.realize())
        assert len(tris) == len(set(tris)) == design.num_triangles
