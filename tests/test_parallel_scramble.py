"""Unit tests for vertex-label scrambling."""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.errors import GenerationError
from repro.parallel import ScramblePermutation, scramble_graph, scramble_permutation

FIG7 = [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]


class TestScramblePermutation:
    @pytest.mark.parametrize("n", [1, 2, 7, 24, 1024])
    def test_bijection(self, n):
        perm = scramble_permutation(n, seed=3)
        assert {perm.apply(x) for x in range(n)} == set(range(n))

    @pytest.mark.parametrize("n", [2, 24, 997])
    def test_inverse(self, n):
        perm = scramble_permutation(n, seed=11)
        for x in range(n):
            assert perm.invert(perm.apply(x)) == x

    def test_deterministic_per_seed(self):
        a = scramble_permutation(100, seed=5)
        b = scramble_permutation(100, seed=5)
        assert (a.a, a.b) == (b.a, b.b)
        assert scramble_permutation(100, seed=6).apply(0) != a.apply(0) or True

    def test_different_seeds_differ_somewhere(self):
        a = scramble_permutation(1000, seed=1)
        b = scramble_permutation(1000, seed=2)
        assert any(a.apply(x) != b.apply(x) for x in range(10))

    def test_rejects_non_coprime(self):
        with pytest.raises(GenerationError):
            ScramblePermutation(n=10, a=5, b=0)

    def test_range_checks(self):
        perm = scramble_permutation(10, seed=0)
        with pytest.raises(GenerationError):
            perm.apply(10)
        with pytest.raises(GenerationError):
            perm.invert(-1)

    def test_extreme_scale_exact(self):
        n = PowerLawDesign(FIG7, "leaf").num_vertices  # ~1.4e26
        perm = scramble_permutation(n, seed=1)
        x = n - 12345
        assert perm.invert(perm.apply(x)) == x

    def test_apply_array_matches_scalar(self):
        perm = scramble_permutation(500, seed=9)
        labels = np.arange(0, 500, 7, dtype=np.int64)
        out = perm.apply_array(labels)
        assert [perm.apply(int(x)) for x in labels] == out.tolist()

    def test_apply_array_range_check(self):
        perm = scramble_permutation(5, seed=0)
        with pytest.raises(GenerationError):
            perm.apply_array(np.array([5]))


class TestScrambleGraph:
    def test_invariants_preserved(self):
        design = PowerLawDesign([3, 4, 5], "center")
        g = design.realize()
        s = scramble_graph(g, seed=5)
        assert s.degree_distribution() == g.degree_distribution()
        assert s.num_triangles() == g.num_triangles()
        assert s.num_edges == g.num_edges
        assert s.is_symmetric()

    def test_labels_actually_move(self):
        g = PowerLawDesign([3, 4]).realize()
        s = scramble_graph(g, seed=1)
        assert s != g  # same structure, different matrix

    def test_validation_after_scramble(self):
        # The design's prediction still matches the scrambled graph for
        # every label-invariant property (the whole point).
        from repro.validate import check_degree_distribution

        design = PowerLawDesign([3, 4, 2], "leaf")
        scrambled = scramble_graph(design.realize(), seed=4)
        assert check_degree_distribution(scrambled, design.degree_distribution)
