"""Tests for the one-command evidence module (repro.paper)."""

from repro.paper import main, rows


class TestPaperModule:
    def test_exit_code_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "0 unexplained mismatches" in out

    def test_every_row_computes(self):
        for row in rows():
            value = row.compute()
            if not row.note:
                assert value == row.paper_value, row.label

    def test_documented_errata_are_flagged(self, capsys):
        main([])
        out = capsys.readouterr().out
        assert "documented paper errata" in out
        assert "DIFFERS (documented)" in out

    def test_fig6_is_the_only_divergence(self):
        diverging = [
            row.label for row in rows() if row.compute() != row.paper_value
        ]
        assert diverging == ["Fig 6: triangles"]
