"""Unit tests for the GraphBLAS-style layer (repro.grb)."""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.errors import ShapeError, ValidationError
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, star_adjacency
from repro.grb import (
    GrbMatrix,
    GrbVector,
    bfs_levels,
    pagerank,
    sssp_min_plus,
    triangle_count_grb,
)
from repro.semiring import BOOL_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import from_dense, from_edges
from tests.conftest import random_dense


def _nx(graph: Graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    for r, c, _ in graph.adjacency:
        if r < c:
            G.add_edge(int(r), int(c))
    return G


class TestGrbVector:
    def test_canonicalization_drops_zeros(self):
        v = GrbVector(4, np.array([0, 2]), np.array([5, 0]))
        assert v.nnz == 1

    def test_duplicates_combine(self):
        v = GrbVector(4, np.array([1, 1]), np.array([2, 3]))
        assert v.get(1) == 5

    def test_min_plus_zero_is_inf(self):
        v = GrbVector(3, np.array([0]), np.array([0.0]), semiring=MIN_PLUS)
        assert v.nnz == 1  # 0.0 is min-plus ONE, kept

    def test_dense_roundtrip(self):
        dense = np.array([0, 3, 0, 7])
        v = GrbVector.from_dense(dense)
        np.testing.assert_array_equal(v.to_dense(), dense)

    def test_index_range_checked(self):
        with pytest.raises(ShapeError):
            GrbVector(2, np.array([2]), np.array([1]))

    def test_ewise_add_union(self):
        a = GrbVector(4, np.array([0, 1]), np.array([1, 2]))
        b = GrbVector(4, np.array([1, 3]), np.array([5, 7]))
        out = a.ewise_add(b)
        assert out.to_dense().tolist() == [1, 7, 0, 7]

    def test_ewise_mult_intersection(self):
        a = GrbVector(4, np.array([0, 1]), np.array([2, 3]))
        b = GrbVector(4, np.array([1, 2]), np.array([4, 5]))
        out = a.ewise_mult(b)
        assert out.to_dense().tolist() == [0, 12, 0, 0]

    def test_select_mask_and_complement(self):
        v = GrbVector(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        mask = GrbVector(4, np.array([1]), np.array([True]))
        assert v.select_mask(mask).to_dense().tolist() == [0, 2, 0, 0]
        assert v.select_mask(mask, complement=True).to_dense().tolist() == [1, 0, 3, 0]

    def test_reduce(self):
        v = GrbVector(3, np.array([0, 2]), np.array([4, 6]))
        assert v.reduce() == 10
        assert GrbVector.empty(3).reduce() == 0

    def test_apply(self):
        v = GrbVector(3, np.array([0, 1]), np.array([1, 2]))
        assert v.apply(lambda x: x * 10).to_dense().tolist() == [10, 20, 0]

    def test_size_mismatch(self):
        with pytest.raises(ShapeError):
            GrbVector.empty(3).ewise_add(GrbVector.empty(4))


class TestGrbMatrix:
    def test_mxm_matches_dense(self, rng):
        A = random_dense(rng, 5, 5)
        B = random_dense(rng, 5, 5)
        out = GrbMatrix(from_dense(A)).mxm(GrbMatrix(from_dense(B)))
        np.testing.assert_array_equal(out.to_dense(), A @ B)

    def test_mxm_masked(self, rng):
        A = random_dense(rng, 6, 6)
        ga = GrbMatrix(from_dense(A))
        out = ga.mxm(ga, mask=ga).to_dense()
        np.testing.assert_array_equal(out, np.where(A != 0, A @ A, 0))

    def test_mxv_matches_dense(self, rng):
        A = random_dense(rng, 5, 5)
        x = random_dense(rng, 1, 5)[0]
        out = GrbMatrix(from_dense(A)).mxv(GrbVector.from_dense(x))
        np.testing.assert_array_equal(out.to_dense(), A @ x)

    def test_vxm_matches_dense(self, rng):
        A = random_dense(rng, 5, 5)
        x = random_dense(rng, 1, 5)[0]
        out = GrbMatrix(from_dense(A)).vxm(GrbVector.from_dense(x))
        np.testing.assert_array_equal(out.to_dense(), x @ A)

    def test_mxv_boolean_semiring_is_reachability_step(self):
        a = GrbMatrix(from_dense(np.array([[0, 1], [0, 0]], dtype=bool)))
        x = GrbVector(2, np.array([1]), np.array([True]))
        out = a.mxv(x, BOOL_OR_AND)
        assert out.to_dense(fill=False).tolist() == [True, False]

    def test_mxv_size_guard(self):
        a = GrbMatrix(from_dense(np.eye(3, dtype=np.int64)))
        with pytest.raises(ShapeError):
            a.mxv(GrbVector.empty(4))

    def test_reduce_rows(self, rng):
        A = random_dense(rng, 5, 4)
        out = GrbMatrix(from_dense(A)).reduce_rows()
        np.testing.assert_array_equal(out.to_dense(), A.sum(axis=1))

    def test_reduce_rows_min_plus(self):
        inf = np.inf
        A = np.array([[inf, 3.0], [inf, inf]])  # inf = min-plus "absent"
        out = GrbMatrix(from_dense(A, semiring=MIN_PLUS)).reduce_rows(MIN_PLUS)
        assert out.get(0) == 3.0
        assert out.nnz == 1  # row 1 is empty

    def test_reduce_scalar(self, rng):
        A = random_dense(rng, 4, 4)
        assert GrbMatrix(from_dense(A)).reduce_scalar() == A.sum()

    def test_apply_and_select(self, rng):
        A = random_dense(rng, 4, 4)
        g = GrbMatrix(from_dense(A))
        np.testing.assert_array_equal(g.apply(lambda v: v * 2).to_dense(), A * 2)
        np.testing.assert_array_equal(
            g.select(lambda r, c, v: r == c).to_dense(), np.diag(np.diag(A))
        )

    def test_transpose(self, rng):
        A = random_dense(rng, 3, 5)
        np.testing.assert_array_equal(GrbMatrix(from_dense(A)).transpose().to_dense(), A.T)

    def test_kron_facade(self, rng):
        A = random_dense(rng, 3, 3)
        B = random_dense(rng, 2, 2)
        out = GrbMatrix(from_dense(A)).kron(GrbMatrix(from_dense(B)))
        np.testing.assert_array_equal(out.to_dense(), np.kron(A, B))

    def test_extract_facade(self, rng):
        A = random_dense(rng, 5, 5)
        out = GrbMatrix(from_dense(A)).extract(np.array([3, 0]), np.array([1, 4]))
        np.testing.assert_array_equal(out.to_dense(), A[np.ix_([3, 0], [1, 4])])


class TestBFS:
    @pytest.mark.parametrize(
        "matrix", [star_adjacency(5), path_graph(7), cycle_graph(6), complete_graph(4)],
        ids=["star", "path", "cycle", "complete"],
    )
    def test_matches_networkx(self, matrix):
        import networkx as nx

        g = Graph(matrix)
        levels = bfs_levels(g, 0)
        want = nx.single_source_shortest_path_length(_nx(g), 0)
        for v in range(g.num_vertices):
            assert levels[v] == want.get(v, -1)

    def test_unreachable_marked(self):
        g = Graph(from_edges(4, [(0, 1)]))
        assert bfs_levels(g, 0).tolist() == [0, 1, -1, -1]

    def test_source_range_checked(self):
        with pytest.raises(ValidationError):
            bfs_levels(Graph(star_adjacency(3)), 99)

    def test_on_designed_graph(self):
        design = PowerLawDesign([3, 4], "center")
        levels = bfs_levels(design.realize(), 0)
        assert (levels >= 0).all()  # center loops make the product connected


class TestSSSP:
    def test_unweighted_equals_bfs(self):
        g = PowerLawDesign([3, 4], "center").realize()
        levels = bfs_levels(g, 0)
        dist = sssp_min_plus(g, 0)
        for v in range(g.num_vertices):
            if levels[v] >= 0:
                assert dist[v] == levels[v]
            else:
                assert np.isinf(dist[v])

    def test_weighted_path(self):
        W = np.array([[0, 2, 0], [2, 0, 3], [0, 3, 0]])
        dist = sssp_min_plus(Graph(from_dense(W)), 0)
        assert dist.tolist() == [0, 2, 5]

    def test_weighted_shortcut_preferred(self):
        # 0->2 direct costs 10; 0->1->2 costs 3.
        W = np.array([[0, 1, 10], [1, 0, 2], [10, 2, 0]])
        dist = sssp_min_plus(Graph(from_dense(W)), 0)
        assert dist[2] == 3

    def test_max_hops_truncates(self):
        g = Graph(path_graph(5))
        dist = sssp_min_plus(g, 0, max_hops=2)
        assert dist[2] == 2 and np.isinf(dist[4])


class TestTrianglesAndPageRank:
    def test_triangle_count_matches_design(self):
        for sizes, loop in ([[5, 3], "center"], [[3, 4], "leaf"]):
            design = PowerLawDesign(sizes, loop)
            assert triangle_count_grb(design.realize()) == design.num_triangles

    def test_triangle_count_rejects_loops(self):
        with pytest.raises(ValidationError):
            triangle_count_grb(Graph(star_adjacency(3, "center")))

    @pytest.mark.parametrize(
        "matrix", [star_adjacency(6), complete_graph(5), path_graph(6)],
        ids=["star", "complete", "path"],
    )
    def test_pagerank_matches_networkx(self, matrix):
        import networkx as nx

        g = Graph(matrix)
        ours = pagerank(g)
        theirs = nx.pagerank(_nx(g), alpha=0.85, tol=1e-10, max_iter=1000)
        np.testing.assert_allclose(
            ours, [theirs[i] for i in range(g.num_vertices)], atol=1e-6
        )

    def test_pagerank_sums_to_one(self):
        g = PowerLawDesign([3, 4, 5]).realize()
        assert pagerank(g).sum() == pytest.approx(1.0)

    def test_pagerank_handles_isolated_vertices(self):
        g = Graph(from_edges(4, [(0, 1)]))
        scores = pagerank(g)
        assert scores.sum() == pytest.approx(1.0)
        assert scores[2] == pytest.approx(scores[3])

    def test_pagerank_validates_damping(self):
        with pytest.raises(ValidationError):
            pagerank(Graph(star_adjacency(3)), damping=1.5)
