"""Tests for the fingerprint-keyed design catalog (repro.catalog)."""

import json

import pytest

from repro.catalog import (
    CATALOG_SCHEMA_VERSION,
    DesignCatalog,
    DesignProperties,
    SpectrumMoments,
    TriangleSummary,
    analytic_properties,
    catalog_key,
    diff_properties,
    empirical_properties,
    key_digest,
    model_name_for_key,
)
from repro.design import DegreeDistribution, PowerLawDesign
from repro.engine import (
    RunConfig,
    StaticScheduler,
    WorkQueueScheduler,
    plan_from_design,
    plan_from_model,
)
from repro.errors import CatalogError
from repro.models import NoisySKGModel, StochasticKroneckerModel
from repro.parallel.stream import generate_to_disk
from repro.validate import check_against_catalog


class TestRecordSchema:
    def test_json_round_trip_is_byte_identical(self):
        record = analytic_properties(PowerLawDesign([3, 4, 5], "center"))
        doc = json.loads(record.to_json())
        again = DesignProperties.from_doc(doc)
        assert again == record
        assert again.to_json() == record.to_json()

    def test_big_int_counts_survive_json(self):
        # Degree counts at paper scale exceed 2**53; the schema stores
        # them as decimal strings so json round-trips stay lossless.
        big = 10**30 + 7
        dist = DegreeDistribution({3: big, big: 1})
        doc = dist.to_json_dict()
        assert doc == {"3": str(big), str(big): "1"}
        assert DegreeDistribution.from_json_dict(doc).to_dict() == {
            3: big,
            big: 1,
        }

    def test_schema_version_mismatch_raises(self):
        record = analytic_properties(PowerLawDesign([3, 4], "center"))
        doc = record.to_doc()
        doc["schema"] = CATALOG_SCHEMA_VERSION + 1
        with pytest.raises(CatalogError):
            DesignProperties.from_doc(doc)

    def test_source_is_validated(self):
        record = analytic_properties(PowerLawDesign([3, 4], "center"))
        with pytest.raises(CatalogError):
            DesignProperties(
                source="vibes",
                model=record.model,
                key_digest=record.key_digest,
                num_vertices=record.num_vertices,
                num_edges=record.num_edges,
                degree_distribution=record.degree_distribution,
                triangles=record.triangles,
                moments=record.moments,
            )

    def test_moments_identities(self):
        design = PowerLawDesign([3, 4, 5], "center")
        record = analytic_properties(design)
        m = record.moments
        assert m.m0 == design.num_vertices
        assert m.m1 == 0
        assert m.m2 == design.num_edges  # 2 * distinct undirected edges
        assert m.m3 == 6 * design.num_triangles


class TestCatalogKeys:
    def test_design_and_plan_share_a_digest(self):
        design = PowerLawDesign([3, 4, 5], "center")
        plan = plan_from_design(design, 3, scramble_seed=7)
        assert key_digest(design) == key_digest(plan)

    def test_rank_count_does_not_change_the_key(self):
        design = PowerLawDesign([3, 4, 5], "center")
        digests = {
            key_digest(plan_from_design(design, n)) for n in (1, 2, 5)
        }
        assert len(digests) == 1

    def test_model_and_plan_share_a_digest(self):
        model = StochasticKroneckerModel(levels=7, num_edges=256, seed=3)
        plan = plan_from_model(model, 2, allow_empty_ranks=True)
        assert key_digest(model) == key_digest(plan)

    def test_seed_changes_the_key(self):
        a = StochasticKroneckerModel(levels=7, num_edges=256, seed=0)
        b = StochasticKroneckerModel(levels=7, num_edges=256, seed=1)
        assert key_digest(a) != key_digest(b)

    def test_model_family_changes_the_key(self):
        a = StochasticKroneckerModel(levels=7, num_edges=256, seed=0)
        b = NoisySKGModel(levels=7, num_edges=256, seed=0)
        assert key_digest(a) != key_digest(b)

    def test_design_and_model_keys_are_disjoint(self):
        assert key_digest(PowerLawDesign([3, 4], "center")) != key_digest(
            StochasticKroneckerModel(levels=4, num_edges=76, seed=0)
        )

    def test_model_name_for_key(self):
        assert (
            model_name_for_key(catalog_key(PowerLawDesign([3, 4], "center")))
            == "kron"
        )
        assert (
            model_name_for_key(
                catalog_key(NoisySKGModel(levels=4, num_edges=16, seed=0))
            )
            == "noisy-skg"
        )

    def test_unkeyable_subject_raises(self):
        with pytest.raises(CatalogError):
            catalog_key(object())


class TestAnalyticClosedForms:
    def test_known_design_values(self):
        record = analytic_properties(PowerLawDesign([3, 4, 5], "center"))
        assert record.source == "analytic"
        assert record.model == "kron"
        assert record.num_vertices == 120
        assert record.num_edges == 692
        assert record.triangles.num_triangles == 287
        assert record.triangles.distinct_edges == 346
        assert record.degree_distribution.total_nnz() == 692

    def test_participation_cross_checks_against_stream(self):
        record = analytic_properties(
            PowerLawDesign([3, 4, 5], "center"), include_participation=True
        )
        assert record.triangles.has_participation
        assert record.triangles.edges_in_triangles == 286
        assert record.triangles.edge_participation_fraction == pytest.approx(
            286 / 346
        )

    def test_skg_streamed_record_matches_model_edge_budget(self):
        model = StochasticKroneckerModel(levels=6, num_edges=200, seed=1)
        record = analytic_properties(model)
        # SKG keeps raw directed samples: duplicates and loops included.
        assert record.num_edges == 200
        assert record.num_vertices == 64
        assert record.model == "skg"

    def test_analytic_is_deterministic(self):
        model = NoisySKGModel(levels=6, num_edges=200, seed=2)
        a = analytic_properties(model, include_participation=True)
        b = analytic_properties(model, include_participation=True)
        assert a.to_json() == b.to_json()


SCHEDULERS = {
    "static": StaticScheduler,
    "work-queue": WorkQueueScheduler,
}


class TestAnalyticEmpiricalParity:
    """The acceptance bar: one schema, two producers, same numbers."""

    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize(
        "model",
        [
            None,  # deterministic kron path
            StochasticKroneckerModel(levels=7, num_edges=512, seed=3),
            NoisySKGModel(levels=7, num_edges=512, seed=3),
        ],
        ids=["kron", "skg", "noisy-skg"],
    )
    def test_parity(self, tmp_path, model, scheduler_name):
        design = PowerLawDesign([5, 3], "center")
        config = RunConfig(
            scheduler=SCHEDULERS[scheduler_name](),
            memory_budget_entries=64,  # force many tiles per rank
            model=model,
        )
        generate_to_disk(design, 2, tmp_path, config=config)

        subject = design if model is None else model
        predicted = analytic_properties(
            subject, include_participation=True, memory_budget_entries=64
        )
        measured = empirical_properties(
            tmp_path, memory_budget_entries=64
        )
        diff = diff_properties(predicted, measured)
        assert diff.same_key, diff.to_text()
        assert diff.matches, diff.to_text()
        assert measured.source == "empirical"
        assert predicted.key_digest == measured.key_digest

    def test_check_against_catalog_facade(self, tmp_path):
        design = PowerLawDesign([5, 3], "center")
        generate_to_disk(design, 2, tmp_path)
        diff = check_against_catalog(tmp_path)
        assert diff.matches, diff.to_text()

    def test_incomplete_run_is_rejected(self, tmp_path):
        design = PowerLawDesign([5, 3], "center")
        generate_to_disk(design, 2, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["status"] = "in_progress"
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CatalogError):
            empirical_properties(tmp_path)


class TestDiff:
    def test_mismatch_is_reported_per_field(self):
        a = analytic_properties(PowerLawDesign([3, 4, 5], "center"))
        b = analytic_properties(PowerLawDesign([3, 4, 9], "center"))
        diff = diff_properties(a, b)
        assert not diff.matches
        assert not diff.same_key
        fields = {f.field for f in diff.mismatches}
        assert "num_vertices" in fields
        assert "num_edges" in fields
        assert "diff" in diff.to_text() or "num_vertices" in diff.to_text()

    def test_self_diff_matches(self):
        record = analytic_properties(PowerLawDesign([3, 4], "center"))
        diff = diff_properties(record, record)
        assert diff.matches
        assert diff.mismatches == ()

    def test_participation_compared_only_when_both_present(self):
        bare = analytic_properties(PowerLawDesign([3, 4, 5], "center"))
        full = analytic_properties(
            PowerLawDesign([3, 4, 5], "center"), include_participation=True
        )
        diff = diff_properties(full, bare)
        # Participation on one side only: not a mismatch.
        assert diff.matches, diff.to_text()


class TestFacadeWithoutCache:
    def test_cacheless_catalog_still_computes(self):
        catalog = DesignCatalog(None)
        record = catalog.analytic(PowerLawDesign([3, 4], "center"))
        assert record.num_vertices == 20
        assert catalog.cache is None
