"""Unit tests for the baseline random generators."""

import numpy as np
import pytest

from repro.baselines import (
    RMATParameters,
    chung_lu_graph,
    expected_degrees_power_law,
    iterative_rmat_design,
    rmat_edges,
    rmat_graph,
)
from repro.errors import GenerationError


class TestRMATParameters:
    def test_defaults_are_graph500(self):
        p = RMATParameters(scale=10)
        assert (p.a, p.b, p.c, p.d) == (0.57, 0.19, 0.19, 0.05)
        assert p.num_vertices == 1024

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GenerationError):
            RMATParameters(scale=4, a=0.9, b=0.2, c=0.0, d=0.0)

    def test_rejects_negative_probability(self):
        with pytest.raises(GenerationError):
            RMATParameters(scale=4, a=1.2, b=-0.2, c=0.0, d=0.0)

    def test_rejects_zero_scale(self):
        with pytest.raises(GenerationError):
            RMATParameters(scale=0)


class TestRMATEdges:
    def test_shapes_and_ranges(self, rng):
        p = RMATParameters(scale=6)
        rows, cols = rmat_edges(p, 500, rng=rng)
        assert len(rows) == len(cols) == 500
        assert rows.min() >= 0 and rows.max() < 64
        assert cols.min() >= 0 and cols.max() < 64

    def test_zero_edges(self, rng):
        rows, cols = rmat_edges(RMATParameters(scale=3), 0, rng=rng)
        assert rows.size == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(GenerationError):
            rmat_edges(RMATParameters(scale=3), -1, rng=rng)

    def test_deterministic_with_seed(self):
        p = RMATParameters(scale=5)
        r1 = rmat_edges(p, 100, rng=np.random.default_rng(7))
        r2 = rmat_edges(p, 100, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(r1[0], r2[0])
        np.testing.assert_array_equal(r1[1], r2[1])

    def test_skew_toward_quadrant_a(self, rng):
        # With a=0.57, low vertex ids should be much denser.
        p = RMATParameters(scale=8)
        rows, _ = rmat_edges(p, 20000, rng=rng)
        low = (rows < 64).sum()
        high = (rows >= 192).sum()
        assert low > 3 * high

    def test_uniform_parameters_give_erdos_renyi(self, rng):
        p = RMATParameters(scale=6, a=0.25, b=0.25, c=0.25, d=0.25)
        rows, _ = rmat_edges(p, 20000, rng=rng)
        counts = np.bincount(rows, minlength=64)
        # Every vertex id should appear within 4 sigma of the mean.
        mean = 20000 / 64
        assert (np.abs(counts - mean) < 4 * np.sqrt(mean)).mean() > 0.95


class TestRMATGraph:
    def test_realized_properties_are_random(self, rng):
        # The paper's critique: realized nnz differs from the request.
        p = RMATParameters(scale=7)
        g = rmat_graph(p, 2000, rng=rng)
        assert g.num_edges != 2000  # dedup + symmetrization changed it
        assert g.num_vertices == 128

    def test_symmetric_by_default(self, rng):
        g = rmat_graph(RMATParameters(scale=5), 300, rng=rng)
        assert g.is_symmetric()

    def test_directed_mode(self, rng):
        g = rmat_graph(RMATParameters(scale=5), 300, rng=rng, symmetrize=False)
        assert g.num_edges <= 300

    def test_produces_problematic_structure(self, rng):
        # Empty vertices and self-loops — the paper's Section V point.
        g = rmat_graph(RMATParameters(scale=8), 500, rng=rng)
        assert g.num_empty_vertices() > 0

    def test_pattern_values_are_binary(self, rng):
        g = rmat_graph(RMATParameters(scale=5), 500, rng=rng)
        assert set(np.unique(g.adjacency.vals)) == {1}


class TestChungLu:
    def test_expected_degrees_shape(self):
        w = expected_degrees_power_law(100, 1.0, d_max=50)
        assert len(w) == 100
        assert w.max() <= 50
        assert w.min() >= 1

    def test_expected_degrees_validation(self):
        with pytest.raises(GenerationError):
            expected_degrees_power_law(0, 1.0)
        with pytest.raises(GenerationError):
            expected_degrees_power_law(10, -1.0)

    def test_graph_roughly_matches_total_degree(self, rng):
        w = expected_degrees_power_law(200, 1.0, d_max=40)
        g = chung_lu_graph(w, rng=rng)
        # Realized nnz is random but in the ballpark of sum(w).
        assert 0.3 * w.sum() < g.num_edges < 1.5 * w.sum()

    def test_graph_is_symmetric(self, rng):
        g = chung_lu_graph(expected_degrees_power_law(100, 1.0), rng=rng)
        assert g.is_symmetric()

    def test_rejects_bad_weights(self, rng):
        with pytest.raises(GenerationError):
            chung_lu_graph(np.array([1.0, -2.0]), rng=rng)
        with pytest.raises(GenerationError):
            chung_lu_graph(np.empty(0), rng=rng)


class TestIterativeDesign:
    def test_converges_and_counts_cost(self, rng):
        result = iterative_rmat_design(
            4000, RMATParameters(scale=9), rel_tol=0.1, rng=rng
        )
        assert result.converged
        assert abs(result.achieved_edges - 4000) <= 400
        assert result.iterations >= 1
        assert result.total_edges_generated >= result.achieved_edges
        assert "rounds" in result.to_text()

    def test_multiple_rounds_usually_needed_for_tight_tolerance(self):
        # Tight tolerance forces the generate-measure-adjust loop to spin.
        iters = []
        for seed in range(5):
            try:
                r = iterative_rmat_design(
                    5000,
                    RMATParameters(scale=9),
                    rel_tol=0.01,
                    rng=np.random.default_rng(seed),
                )
                iters.append(r.iterations)
            except GenerationError:
                iters.append(99)
        assert max(iters) > 1

    def test_rejects_bad_target(self, rng):
        with pytest.raises(GenerationError):
            iterative_rmat_design(0, RMATParameters(scale=5), rng=rng)

    def test_impossible_tolerance_raises(self, rng):
        with pytest.raises(GenerationError):
            iterative_rmat_design(
                10**6,
                RMATParameters(scale=4),  # only 16 vertices -> ~256 edges max
                rel_tol=0.05,
                max_iterations=3,
                rng=rng,
            )
