"""RunConfig: the unified run-shaping API and its deprecation shims.

Contract under test (shared by every config-accepting driver):

* ``RunConfig()`` reproduces each driver's historical behaviour;
* individual run-shaping keywords keep working but warn once per
  function per process;
* mixing ``config=`` with an individual keyword raises;
* a config field the function cannot honour raises loudly instead of
  being silently ignored.
"""

import dataclasses
import warnings

import pytest

from repro import PowerLawDesign, RunConfig, VirtualCluster
from repro.engine.config import (
    _UNSET,
    _reset_warned,
    resolve_run_config,
)
from repro.errors import GenerationError
from repro.parallel import generate_design_parallel, streamed_degree_distribution
from repro.parallel.scaling import run_scaling_study
from repro.parallel.simulate import simulate_rate_curve
from repro.parallel.stream import generate_to_disk

DESIGN = PowerLawDesign([3, 4, 5], "center")
BUDGET = 500


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees the warn-once state as a fresh process would."""
    _reset_warned()
    yield
    _reset_warned()


class TestRunConfigDataclass:
    def test_defaults_are_neutral(self):
        cfg = RunConfig()
        assert cfg.backend is None
        assert cfg.scheduler is None
        assert cfg.memory_budget_entries is None
        assert cfg.transport is None
        assert cfg.checkpoint_dir is None
        assert cfg.resume is False
        assert cfg.scramble_seed is None
        assert cfg.kernel == "auto"
        assert cfg.non_default_fields() == ()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunConfig().kernel = "numpy"

    def test_replace_round_trip(self):
        cfg = RunConfig(memory_budget_entries=BUDGET, kernel="numpy")
        again = cfg.replace(kernel="auto").replace(kernel="numpy")
        assert again == cfg
        assert cfg.non_default_fields() == ("kernel", "memory_budget_entries")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(GenerationError, match="unknown kernel"):
            RunConfig(kernel="fortran")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(GenerationError, match="must be positive"):
            RunConfig(memory_budget_entries=0)


class TestResolveRunConfig:
    def test_config_passes_through(self):
        cfg = RunConfig(memory_budget_entries=BUDGET)
        assert resolve_run_config("f", cfg) is cfg

    def test_legacy_kwargs_fold_and_warn_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_run_config("f", None, backend="thread")
            second = resolve_run_config("f", None, backend="thread")
            resolve_run_config("g", None, backend="thread")
        assert first.backend == "thread" == second.backend
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        # Once for "f" (not twice), once for "g".
        assert len(deprecations) == 2
        assert "config=RunConfig(...)" in str(deprecations[0].message)

    def test_no_kwargs_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_run_config("f", None) == RunConfig()

    def test_mixing_raises(self):
        with pytest.raises(GenerationError, match="not both"):
            resolve_run_config("f", RunConfig(), backend="thread")

    def test_non_runconfig_rejected(self):
        with pytest.raises(GenerationError, match="must be a RunConfig"):
            resolve_run_config("f", {"backend": "thread"})

    def test_unsupported_field_raises(self):
        cfg = RunConfig(resume=True)
        with pytest.raises(GenerationError, match=r"\['resume'\]"):
            resolve_run_config("f", cfg, unsupported=("resume",))

    def test_unset_sentinel_means_not_passed(self):
        cfg = resolve_run_config("f", None, backend=_UNSET, scheduler=_UNSET)
        assert cfg == RunConfig()


class TestDriversHonourConfig:
    def test_generate_design_parallel_config_equals_legacy(self):
        via_config = generate_design_parallel(
            DESIGN, 4, config=RunConfig(memory_budget_entries=BUDGET)
        )
        via_legacy = generate_design_parallel(
            DESIGN, 4, memory_budget_entries=BUDGET
        )
        assert via_config.adjacency.equal(via_legacy.adjacency)

    def test_generate_to_disk_config_equals_legacy(self, tmp_path):
        generate_to_disk(
            DESIGN,
            2,
            tmp_path / "a",
            config=RunConfig(memory_budget_entries=BUDGET, scramble_seed=7),
        )
        generate_to_disk(
            DESIGN,
            2,
            tmp_path / "b",
            memory_budget_entries=BUDGET,
            scramble_seed=7,
        )
        for rank in range(2):
            assert (tmp_path / "a" / f"edges.{rank}.tsv").read_bytes() == (
                tmp_path / "b" / f"edges.{rank}.tsv"
            ).read_bytes()

    def test_streamed_degrees_config_path(self):
        dist = streamed_degree_distribution(
            DESIGN, 2, config=RunConfig(memory_budget_entries=BUDGET)
        )
        assert dist == DESIGN.degree_distribution

    def test_scaling_and_simulate_accept_config(self):
        study = run_scaling_study(
            DESIGN.to_chain(),
            [1, 2],
            config=RunConfig(memory_budget_entries=BUDGET),
        )
        assert [p.n_ranks for p in study.points] == [1, 2]
        curve = simulate_rate_curve(
            DESIGN, [1, 2], config=RunConfig(memory_budget_entries=BUDGET)
        )
        assert len(curve.points) == 2

    def test_checkpoint_dir_via_config(self, tmp_path):
        graph = generate_design_parallel(
            DESIGN,
            2,
            config=RunConfig(
                memory_budget_entries=BUDGET,
                checkpoint_dir=str(tmp_path / "ckpt"),
            ),
        )
        assert graph.num_edges == DESIGN.num_edges
        assert (tmp_path / "ckpt" / "manifest.json").exists()

    def test_scramble_without_checkpoint_raises(self):
        with pytest.raises(GenerationError, match="scramble_seed requires"):
            generate_design_parallel(
                DESIGN, 2, config=RunConfig(scramble_seed=3)
            )

    def test_resume_without_checkpoint_raises(self):
        with pytest.raises(GenerationError, match="requires checkpoint_dir"):
            generate_design_parallel(DESIGN, 2, config=RunConfig(resume=True))

    def test_transport_unsupported_in_degree_driver(self):
        with pytest.raises(GenerationError, match="transport"):
            streamed_degree_distribution(
                DESIGN, 2, config=RunConfig(transport="inproc")
            )

    def test_drivers_reject_mixed_styles(self, tmp_path):
        with pytest.raises(GenerationError, match="not both"):
            generate_to_disk(
                DESIGN,
                2,
                tmp_path,
                config=RunConfig(),
                memory_budget_entries=BUDGET,
            )


class TestVirtualClusterMigration:
    def test_new_name_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cluster = VirtualCluster(n_ranks=2, memory_budget_entries=BUDGET)
        assert cluster.memory_budget_entries == BUDGET

    def test_old_init_keyword_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="memory_entries"):
            cluster = VirtualCluster(2, memory_entries=BUDGET)
        assert cluster.memory_budget_entries == BUDGET

    def test_old_read_property_warns(self):
        cluster = VirtualCluster(2, memory_budget_entries=BUDGET)
        with pytest.warns(DeprecationWarning, match="memory_entries"):
            assert cluster.memory_entries == BUDGET

    def test_repr_uses_new_name(self):
        assert "memory_budget_entries" in repr(VirtualCluster(2))
