"""One lifecycle contract, asserted across every sink.

The engine promises sinks a strict lifecycle (open → consume →
ascending-rank commit → finalize | abort) and the base
:class:`~repro.engine.sinks.Sink` enforces the state machine for all of
them — so this suite drives **every** sink (in-memory, shard, degree,
and :class:`~repro.net.TransportSink` over both local transports)
through the same conformance cases:

* abort is idempotent (the streaming reorder buffer and ``execute``'s
  outer handler can both observe one failure — regression: ShardSink
  used to rewrite the failed manifest on the second call);
* commit/finalize after abort raise typed errors instead of silently
  swallowing work;
* finalize is idempotent and cached;
* abort before open is a no-op (regression: ShardSink used to
  AttributeError on its missing manifest);

and then asserts the *output* contract: shard bytes, ``manifest.json``,
degree histograms, and assembled triples are identical whether tiles
flow directly into a sink or across a transport, under both the static
and completion-driven schedulers.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.engine import (
    AssemblySink,
    DegreeSink,
    RunConfig,
    ShardSink,
    StaticScheduler,
    WorkQueueScheduler,
    execute,
    plan_from_design,
)
from repro.engine.execute import _RankWork, _run_rank_task
from repro.errors import GenerationError
from repro.net import TileCollector, TransportSink, execute_over_transport, local_pair
from repro.runtime import MetricsRegistry
from repro.runtime.checkpoint import STATUS_FAILED, RunManifest

DESIGN = PowerLawDesign([3, 4, 5], "center")


def make_plan(n_ranks=3):
    return plan_from_design(DESIGN, n_ranks, scramble_seed=5)


def run_rank(plan, sink, task):
    """Produce one rank's TaskOutcome exactly as the engine worker would."""
    return _run_rank_task(
        _RankWork(
            rank=task.rank,
            b_local=task.assignment.b_local,
            col_base=task.assignment.col_base,
            c=plan.c_matrix,
            loop_vertex=plan.loop_vertex,
            scramble=plan.scramble,
            max_tile_entries=plan.memory_budget_entries,
            consumer_factory=sink.consumer_factory(task),
        )
    )


def commit_all(plan, sink, skipped=()):
    for task in plan.tasks:
        if task.rank not in skipped:
            sink.commit(task, run_rank(plan, sink, task))


class Harness:
    """A sink plus whatever plumbing it needs to live (collector thread
    for the transport variants)."""

    def __init__(self, name, plan, tmp_path):
        self.name = name
        self.plan = plan
        self._thread = None
        if name == "assembly":
            self.sink = AssemblySink()
        elif name == "shards":
            self.sink = ShardSink(tmp_path / "shards")
        elif name == "degrees":
            self.sink = DegreeSink()
        else:
            transport_name = name.split("-", 1)[1]
            producer, collector_end = local_pair(transport_name)
            self.collector = TileCollector(
                plan, AssemblySink(), collector_end, recv_timeout_s=5.0
            )
            self._thread = self.collector.run_in_thread()
            self.sink = TransportSink(producer, recv_timeout_s=5.0)

    def close(self):
        if self._thread is not None:
            self.sink.transport.close()
            self._thread.join(timeout=10.0)
            assert not self._thread.is_alive()


SINKS = ["assembly", "shards", "degrees", "net-inproc", "net-socket"]


@pytest.fixture(params=SINKS)
def harness(request, tmp_path):
    h = Harness(request.param, make_plan(), tmp_path)
    yield h
    h.close()


class TestLifecycleContract:
    def test_full_lifecycle_finalizes_once(self, harness):
        sink, plan = harness.sink, harness.plan
        skipped = sink.open(plan)
        commit_all(plan, sink, skipped)
        result = sink.finalize(plan, elapsed_s=0.5, skipped=skipped)
        assert result is not None

    def test_finalize_is_idempotent_and_cached(self, harness):
        sink, plan = harness.sink, harness.plan
        skipped = sink.open(plan)
        commit_all(plan, sink, skipped)
        first = sink.finalize(plan, elapsed_s=0.5, skipped=skipped)
        second = sink.finalize(plan, elapsed_s=99.0, skipped=skipped)
        assert second is first

    def test_abort_is_idempotent(self, harness):
        sink, plan = harness.sink, harness.plan
        sink.open(plan)
        boom = RuntimeError("boom")
        sink.abort(boom)
        sink.abort(boom)  # second observer of the same failure: no-op

    def test_abort_before_open_is_a_noop(self, harness):
        # Regression: ShardSink.abort used to AttributeError when the
        # run died before open() built the manifest.
        harness.sink.abort(RuntimeError("early"))

    def test_commit_after_abort_refused(self, harness):
        sink, plan = harness.sink, harness.plan
        sink.open(plan)
        sink.abort(RuntimeError("boom"))
        task = plan.tasks[0]
        with pytest.raises(GenerationError, match="aborted"):
            sink.commit(task, object())

    def test_finalize_after_abort_refused(self, harness):
        sink, plan = harness.sink, harness.plan
        sink.open(plan)
        sink.abort(RuntimeError("boom"))
        with pytest.raises(GenerationError, match="aborted"):
            sink.finalize(plan, elapsed_s=0.0, skipped=())

    def test_commit_after_finalize_refused(self, harness):
        sink, plan = harness.sink, harness.plan
        skipped = sink.open(plan)
        commit_all(plan, sink, skipped)
        sink.finalize(plan, elapsed_s=0.1, skipped=skipped)
        with pytest.raises(GenerationError, match="finalized"):
            sink.commit(plan.tasks[0], object())

    def test_abort_after_finalize_is_a_noop(self, harness):
        sink, plan = harness.sink, harness.plan
        skipped = sink.open(plan)
        commit_all(plan, sink, skipped)
        result = sink.finalize(plan, elapsed_s=0.1, skipped=skipped)
        sink.abort(RuntimeError("late"))
        assert sink.finalize(plan, elapsed_s=0.1, skipped=skipped) is result


class TestShardSinkAbortRegression:
    def test_double_abort_writes_failed_manifest_once(self, tmp_path):
        plan = make_plan()
        metrics = MetricsRegistry()
        sink = ShardSink(tmp_path)
        sink.open(plan, metrics=metrics)
        writes_after_open = metrics.counter("checkpoint.manifest_writes").value
        sink.abort(RuntimeError("boom"))
        sink.abort(RuntimeError("boom again"))
        assert (
            metrics.counter("checkpoint.manifest_writes").value
            == writes_after_open + 1
        )
        assert RunManifest.load(tmp_path).status == STATUS_FAILED

    def test_second_finalize_does_not_rewrite_manifest(self, tmp_path):
        plan = make_plan()
        metrics = MetricsRegistry()
        sink = ShardSink(tmp_path)
        skipped = sink.open(plan, metrics=metrics)
        commit_all(plan, sink, skipped)
        sink.finalize(plan, elapsed_s=0.1, skipped=skipped)
        writes = metrics.counter("checkpoint.manifest_writes").value
        sink.finalize(plan, elapsed_s=0.1, skipped=skipped)
        assert metrics.counter("checkpoint.manifest_writes").value == writes


# -- output identity across sinks and transports -------------------------------
def manifest_identity_fields(directory):
    doc = json.loads((Path(directory) / "manifest.json").read_text())
    return {k: doc[k] for k in ("fingerprint", "shards", "status", "prefix")}


def shard_bytes(directory):
    return {
        p.name: p.read_bytes() for p in sorted(Path(directory).glob("*.tsv"))
    }


SCHEDULERS = {
    "static": lambda: StaticScheduler(batch_size=1),
    "queue": lambda: WorkQueueScheduler(),
}


class TestByteIdentityAcrossTransports:
    @pytest.fixture()
    def baseline(self, tmp_path):
        plan = make_plan(4)
        directory = tmp_path / "baseline"
        execute(plan, ShardSink(directory), scheduler=StaticScheduler(batch_size=1))
        return plan, directory

    @pytest.mark.parametrize("transport", ["inproc", "socket"])
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    def test_shard_output_byte_identical(
        self, baseline, tmp_path, transport, scheduler_name
    ):
        plan, base_dir = baseline
        out = tmp_path / f"net-{transport}-{scheduler_name}"
        result = execute_over_transport(
            plan,
            ShardSink(out),
            transport=transport,
            scheduler=SCHEDULERS[scheduler_name](),
        )
        assert shard_bytes(out) == shard_bytes(base_dir)
        assert manifest_identity_fields(out) == manifest_identity_fields(base_dir)
        assert result.sink_result.total_edges == DESIGN.num_edges

    def test_assembled_triples_identical(self):
        plan = make_plan(4)
        local = execute(plan, AssemblySink()).sink_result
        remote = execute_over_transport(
            plan, AssemblySink(), transport="inproc"
        ).sink_result
        assert sorted(local.blocks) == sorted(remote.blocks)
        for rank in local.blocks:
            for a, b in zip(local.blocks[rank], remote.blocks[rank]):
                np.testing.assert_array_equal(a, b)

    def test_degree_histogram_identical(self):
        plan = make_plan(4)
        local = execute(plan, DegreeSink()).sink_result.distribution()
        remote = (
            execute_over_transport(plan, DegreeSink(), transport="inproc")
            .sink_result.distribution()
        )
        assert local == remote == DESIGN.degree_distribution

    def test_resume_over_transport_skips_and_matches(self, tmp_path):
        from repro.parallel import generate_to_disk
        from repro.runtime.checkpoint import CrashInjector, SimulatedCrash

        clean = tmp_path / "clean"
        generate_to_disk(DESIGN, 4, clean)
        crashed = tmp_path / "crashed"
        with pytest.raises(SimulatedCrash):
            generate_to_disk(DESIGN, 4, crashed, crash_hook=CrashInjector(2))
        # Resume the dead run, collecting over a transport: the SKIP
        # handshake must carry the completed ranks across the wire.
        summary = generate_to_disk(
            DESIGN, 4, crashed, resume=True, transport="inproc"
        )
        assert summary.skipped_ranks == 2
        assert shard_bytes(crashed) == shard_bytes(clean)
        assert manifest_identity_fields(crashed) == manifest_identity_fields(clean)

    @pytest.mark.parametrize("transport", ["inproc", "socket"])
    def test_generate_to_disk_transport_matches_direct(self, tmp_path, transport):
        direct = tmp_path / "direct"
        routed = tmp_path / "routed"
        from repro.parallel import generate_to_disk

        s1 = generate_to_disk(DESIGN, 3, direct, scramble_seed=9)
        s2 = generate_to_disk(
            DESIGN, 3, routed, scramble_seed=9, transport=transport
        )
        assert shard_bytes(direct) == shard_bytes(routed)
        assert manifest_identity_fields(direct) == manifest_identity_fields(routed)
        assert s1.total_edges == s2.total_edges == DESIGN.num_edges


class TestByteIdentityUnderChurn:
    """The elastic hard invariant, across transports: a run whose worker
    pool is revoked mid-tile and regrown must collect the exact bytes of
    an uninterrupted static run."""

    CHURN = (
        ("dispatch", 2, "revoke", 1, False),
        ("dispatch", 4, "revoke", 1, True),
        ("complete", 1, "add", 2, False),
        ("complete", 3, "remove", 1, False),
    )

    def _churn_pool(self):
        from repro.parallel.backends import ThreadBackend
        from repro.runtime import ChurnAction, ElasticWorkerPool, WorkerRevoker

        pool = ElasticWorkerPool(
            ThreadBackend(max_workers=8), workers=3, lease_timeout_s=0.05
        )
        revoker = WorkerRevoker(
            [
                ChurnAction(
                    trigger=t, at=a, op=op, workers=w, silent=silent
                )
                for t, a, op, w, silent in self.CHURN
            ]
        ).attach(pool)
        return pool, revoker

    @pytest.mark.parametrize("transport", ["inproc", "socket"])
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    def test_collected_output_identical_under_churn(
        self, baseline_static, tmp_path, transport, scheduler_name
    ):
        plan, base_dir = baseline_static
        pool, revoker = self._churn_pool()
        out = tmp_path / f"churn-{transport}-{scheduler_name}"
        try:
            result = execute_over_transport(
                plan,
                ShardSink(out),
                transport=transport,
                config=RunConfig(
                    backend=pool, scheduler=SCHEDULERS[scheduler_name]()
                ),
            )
        finally:
            pool.shutdown()
        assert any(a.op == "revoke" for a, _ in revoker.fired)
        assert shard_bytes(out) == shard_bytes(base_dir)
        assert manifest_identity_fields(out) == manifest_identity_fields(base_dir)
        assert result.sink_result.total_edges == DESIGN.num_edges

    @pytest.fixture()
    def baseline_static(self, tmp_path):
        plan = make_plan(6)
        directory = tmp_path / "baseline"
        execute(plan, ShardSink(directory), scheduler=StaticScheduler(batch_size=1))
        return plan, directory

    def test_direct_shard_output_identical_under_churn(
        self, baseline_static, tmp_path
    ):
        plan, base_dir = baseline_static
        pool, revoker = self._churn_pool()
        out = tmp_path / "churn-direct"
        try:
            execute(
                plan,
                ShardSink(out),
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
            )
        finally:
            pool.shutdown()
        assert any(a.op == "revoke" for a, _ in revoker.fired)
        assert shard_bytes(out) == shard_bytes(base_dir)
        assert manifest_identity_fields(out) == manifest_identity_fields(base_dir)

    def test_resume_after_churned_crash_matches_clean(self, tmp_path):
        from repro.parallel import generate_to_disk
        from repro.runtime import ChurnAction, ElasticWorkerPool, WorkerRevoker
        from repro.runtime.checkpoint import CrashInjector, SimulatedCrash

        clean = tmp_path / "clean"
        generate_to_disk(DESIGN, 4, clean)
        churned = tmp_path / "churned"
        pool = ElasticWorkerPool(workers=2, lease_timeout_s=0.05)
        WorkerRevoker(
            [ChurnAction(trigger="dispatch", at=1, op="revoke")]
        ).attach(pool)
        try:
            with pytest.raises(SimulatedCrash):
                generate_to_disk(
                    DESIGN,
                    4,
                    churned,
                    config=RunConfig(backend=pool),
                    crash_hook=CrashInjector(2),
                )
        finally:
            pool.shutdown()
        # Resume the churn-interrupted run on a fresh static backend: the
        # manifest left behind must be a valid checkpoint.
        summary = generate_to_disk(
            DESIGN, 4, churned, config=RunConfig(resume=True)
        )
        assert summary.skipped_ranks == 2
        assert shard_bytes(churned) == shard_bytes(clean)
        assert manifest_identity_fields(churned) == manifest_identity_fields(clean)


class TestDegeneratePlans:
    """Degenerate plan shapes across the model axis: zero ranks, all-
    empty ranks, and a one-entry tile budget must flow through both
    schedulers and every sink path without special-casing — empty shards
    are still checksummed, manifests still complete, bytes still match.
    """

    SKG_CASES = {
        "empty": dict(levels=4, num_edges=0, seed=0),
        "sparse": dict(levels=5, num_edges=11, seed=3),
    }

    def _skg(self, case):
        from repro.models import StochasticKroneckerModel

        return StochasticKroneckerModel(**self.SKG_CASES[case])

    def test_zero_rank_model_plan_refused(self):
        from repro.engine import plan_from_model

        with pytest.raises(GenerationError, match="at least one rank"):
            plan_from_model(self._skg("sparse"), 0)

    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    def test_all_empty_rank_model_plan_writes_complete_shards(
        self, tmp_path, scheduler_name
    ):
        from repro.engine import plan_from_model
        from repro.parallel import verify_shards

        plan = plan_from_model(self._skg("empty"), 3, allow_empty_ranks=True)
        out = tmp_path / scheduler_name
        result = execute(
            plan,
            ShardSink(out),
            config=RunConfig(scheduler=SCHEDULERS[scheduler_name]()),
        )
        assert result.sink_result.total_edges == 0
        assert sorted(p.name for p in Path(out).iterdir()) == [
            "edges.0.tsv",
            "edges.1.tsv",
            "edges.2.tsv",
            "manifest.json",
        ]
        assert verify_shards(out, check_degrees=False).passed

    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    def test_kron_empty_ranks_byte_identical_across_schedulers(
        self, tmp_path, scheduler_name
    ):
        # More ranks than B rows: ranks 0, 3, 6 get nothing to do.
        design = PowerLawDesign([3, 4], "none")
        plan = plan_from_design(design, 9, allow_empty_ranks=True)
        base_dir = tmp_path / "base"
        execute(plan, ShardSink(base_dir))
        out = tmp_path / scheduler_name
        result = execute(
            plan,
            ShardSink(out),
            config=RunConfig(scheduler=SCHEDULERS[scheduler_name]()),
        )
        assert result.sink_result.total_edges == design.num_edges
        assert shard_bytes(out) == shard_bytes(base_dir)
        assert manifest_identity_fields(out) == manifest_identity_fields(base_dir)

    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("axis", ["kron", "skg"])
    def test_single_entry_tile_budget_byte_identical(
        self, tmp_path, scheduler_name, axis
    ):
        from repro.engine import plan_from_model

        if axis == "kron":
            # 63 entries is this design's partition floor (nnz(B) after
            # the only feasible split); every rank still tiles, since
            # the largest whole-rank block is 231 entries.
            whole = make_plan(3)
            tiny = plan_from_design(
                DESIGN, 3, memory_budget_entries=63, scramble_seed=5
            )
        else:
            model = self._skg("sparse")
            whole = plan_from_model(model, 3)
            tiny = plan_from_model(model, 3, memory_budget_entries=1)
        base_dir = tmp_path / "base"
        execute(whole, ShardSink(base_dir))
        out = tmp_path / f"{axis}-{scheduler_name}"
        execute(
            tiny,
            ShardSink(out),
            config=RunConfig(scheduler=SCHEDULERS[scheduler_name]()),
        )
        assert shard_bytes(out) == shard_bytes(base_dir)
