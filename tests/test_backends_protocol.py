"""Backend-protocol conformance tests, parametrized over all backends."""

import multiprocessing as mp

import pytest

from repro.errors import GenerationError
from repro.parallel import (
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
    backend_worker_count,
    default_start_method,
    get_backend,
    list_backends,
    resolve_backend,
)
from repro.typing import Backend, StreamingBackend

ALL_BACKENDS = [SerialBackend, ThreadBackend, MultiprocessingBackend]


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


@pytest.fixture(params=ALL_BACKENDS, ids=lambda cls: cls.name)
def backend(request):
    instance = request.param()
    yield instance
    getattr(instance, "shutdown", lambda: None)()


class TestProtocolConformance:
    def test_satisfies_backend_protocol(self, backend):
        assert isinstance(backend, Backend)

    def test_has_registry_name(self, backend):
        assert backend.name in list_backends()

    def test_map_preserves_order(self, backend):
        assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty(self, backend):
        assert backend.map(_square, []) == []

    def test_map_accepts_any_sequence(self, backend):
        assert backend.map(_square, (2, 4)) == [4, 16]


class TestStreamingConformance:
    """The submit/as_completed surface every shipped backend carries."""

    def test_satisfies_streaming_protocol(self, backend):
        assert isinstance(backend, StreamingBackend)

    def test_submit_result_round_trip(self, backend):
        assert backend.submit(_square, 7).result() == 49

    def test_submit_exception_replayed_by_result(self, backend):
        handle = backend.submit(_boom, 3)
        with pytest.raises(ValueError, match="boom on 3"):
            handle.result()

    def test_as_completed_yields_every_handle(self, backend):
        handles = [backend.submit(_square, i) for i in range(5)]
        done = list(backend.as_completed(handles))
        assert sorted(h.result() for h in done) == [0, 1, 4, 9, 16]
        assert len(done) == len(handles)

    def test_map_agrees_with_submit(self, backend):
        items = [3, 1, 4, 1, 5]
        via_map = backend.map(_square, items)
        via_submit = [backend.submit(_square, i).result() for i in items]
        assert via_map == via_submit

    def test_worker_count_positive(self, backend):
        assert backend_worker_count(backend) >= 1


class TestBackendWorkerCount:
    def test_serial_is_one(self):
        assert backend_worker_count(SerialBackend()) == 1

    def test_thread_reports_max_workers(self):
        assert backend_worker_count(ThreadBackend(max_workers=3)) == 3

    def test_multiprocessing_reports_processes(self):
        assert backend_worker_count(MultiprocessingBackend(processes=2)) == 2

    def test_unknown_backend_defaults_to_one(self):
        class MapOnly:
            name = "map-only"

            def map(self, fn, items):
                return [fn(i) for i in items]

        assert backend_worker_count(MapOnly()) == 1


class TestRegistry:
    def test_all_names_registered(self):
        assert list_backends() == ["serial", "thread", "multiprocessing", "elastic"]

    @pytest.mark.parametrize(
        "name", ["serial", "thread", "multiprocessing", "elastic"]
    )
    def test_get_backend_returns_fresh_instance(self, name):
        a, b = get_backend(name), get_backend(name)
        assert a.name == name
        assert a is not b

    def test_unknown_name_rejected(self):
        with pytest.raises(GenerationError, match="unknown backend"):
            get_backend("carrier-pigeon")

    def test_resolve_none_is_serial(self):
        assert resolve_backend(None).name == "serial"

    def test_resolve_name(self):
        assert resolve_backend("thread").name == "thread"

    def test_resolve_instance_passthrough(self):
        instance = SerialBackend()
        assert resolve_backend(instance) is instance

    def test_resolve_rejects_non_backend(self):
        with pytest.raises(GenerationError):
            resolve_backend(42)


class TestMultiprocessingStartMethod:
    def test_default_method_is_available_on_platform(self):
        assert default_start_method() in mp.get_all_start_methods()

    def test_backend_defaults_to_platform_method(self):
        assert MultiprocessingBackend().start_method == default_start_method()

    def test_unknown_method_rejected(self):
        with pytest.raises(GenerationError, match="unknown multiprocessing start method"):
            MultiprocessingBackend(start_method="teleport")

    @pytest.mark.parametrize("method", ["fork", "spawn", "forkserver"])
    def test_explicit_method_maps(self, method):
        if method not in mp.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable on this platform")
        backend = MultiprocessingBackend(processes=2, start_method=method)
        assert backend.start_method == method
        assert backend.map(_square, [3, 1, 2]) == [9, 1, 4]


class TestMultiprocessingSubmit:
    def test_persistent_executor_released_by_shutdown(self):
        backend = MultiprocessingBackend(processes=2)
        try:
            assert backend.submit(_square, 4).result() == 16
            assert backend._executor is not None
        finally:
            backend.shutdown()
        assert backend._executor is None

    def test_map_does_not_start_persistent_executor(self):
        backend = MultiprocessingBackend(processes=2)
        assert backend.map(_square, [2, 3]) == [4, 9]
        assert backend._executor is None


class TestThreadBackend:
    def test_pool_reused_until_shutdown(self):
        backend = ThreadBackend(max_workers=2)
        backend.map(_square, [1, 2])
        pool = backend._pool
        backend.map(_square, [3])
        assert backend._pool is pool
        backend.shutdown()
        assert backend._pool is None

    def test_shutdown_idempotent(self):
        backend = ThreadBackend()
        backend.shutdown()
        backend.shutdown()

    def test_generator_end_to_end(self):
        from repro.graphs import star_adjacency
        from repro.kron import KroneckerChain
        from repro.parallel import ParallelKroneckerGenerator, VirtualCluster

        chain = KroneckerChain([star_adjacency(3), star_adjacency(4), star_adjacency(5)])
        gen = ParallelKroneckerGenerator(
            chain, VirtualCluster(4), backend=ThreadBackend(max_workers=2)
        )
        assert gen.assemble().equal(chain.materialize())
