"""Unit tests for the analysis helpers."""

import math

import pytest

from repro.analysis import (
    degree_series,
    fit_power_law,
    ideal_power_law_series,
    log_bin_series,
    power_law_deviation,
)
from repro.analysis.powerlaw import _log10_exact
from repro.design import DegreeDistribution, PowerLawDesign
from repro.errors import DesignError


class TestLog10Exact:
    def test_small_values(self):
        assert _log10_exact(1000) == pytest.approx(3.0)

    def test_huge_values_beyond_float(self):
        v = 10**400 + 12345
        assert _log10_exact(v) == pytest.approx(400.0, abs=1e-9)

    def test_fig7_edge_count(self):
        v = 2705963586782877716483871216764
        assert _log10_exact(v) == pytest.approx(math.log10(2.7059635868e30), abs=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(DesignError):
            _log10_exact(0)


class TestFitPowerLaw:
    def test_recovers_exact_alpha_one(self):
        dist = PowerLawDesign([3, 4, 5]).degree_distribution
        fit = fit_power_law(dist)
        assert fit.alpha == pytest.approx(1.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-12)
        assert fit.coefficient == pytest.approx(60.0, rel=1e-6)

    def test_alpha_two(self):
        dist = {d: 10**6 // d**2 for d in (1, 10, 100)}
        fit = fit_power_law(dist)
        assert fit.alpha == pytest.approx(2.0, abs=1e-6)

    def test_works_on_mapping(self):
        fit = fit_power_law({1: 100, 10: 10, 100: 1})
        assert fit.alpha == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(DesignError):
            fit_power_law({5: 3})

    def test_fig7_scale_fit_is_finite(self):
        dist = PowerLawDesign(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
        ).degree_distribution
        fit = fit_power_law(dist)
        assert 0.5 < fit.alpha < 1.5
        assert fit.num_points == len(dist)


class TestDeviation:
    def test_zero_on_exact_law(self):
        design = PowerLawDesign([3, 4, 5, 9])
        dist = design.degree_distribution
        dev = power_law_deviation(dist, 1.0, _log10_exact(design.power_law_coefficient))
        assert dev == pytest.approx(0.0, abs=1e-9)

    def test_positive_on_decorated_design(self):
        # Center loops perturb the line (the paper's Fig. 6 wobble).
        design = PowerLawDesign([3, 4, 5, 9], "center")
        dist = design.degree_distribution
        dev = power_law_deviation(dist, 1.0, _log10_exact(design.power_law_coefficient))
        assert dev > 0.01


class TestSeries:
    def test_degree_series_logs(self):
        s = degree_series({1: 100, 10: 10})
        assert s.log10_degree == (0.0, 1.0)
        assert s.log10_count == (2.0, 1.0)

    def test_degree_series_drops_degree_zero(self):
        s = degree_series({0: 5, 2: 3})
        assert len(s) == 1

    def test_series_from_distribution(self):
        s = degree_series(DegreeDistribution({1: 15, 15: 1}), label="x")
        assert s.label == "x"
        assert s.to_rows() == [(0.0, pytest.approx(math.log10(15))), (pytest.approx(math.log10(15)), 0.0)]

    def test_ideal_line_endpoints(self):
        s = ideal_power_law_series(1000, 1000, points=11)
        assert s.log10_count[0] == pytest.approx(3.0)
        assert s.log10_count[-1] == pytest.approx(0.0)
        assert len(s) == 11


class TestLogBinSeries:
    def test_bins_aggregate(self):
        rows = log_bin_series({1: 10, 2: 5, 3: 4, 4: 2, 7: 1})
        as_dict = dict(rows)
        assert as_dict[2 ** 0.5] == 10  # bin [1,2)
        assert as_dict[2 ** 1.5] == 9   # bin [2,4)
        assert as_dict[2 ** 2.5] == 3   # bin [4,8)

    def test_degree_zero_bin(self):
        rows = log_bin_series({0: 7, 1: 1})
        assert rows[0] == (0.0, 7)

    def test_bad_base(self):
        with pytest.raises(DesignError):
            log_bin_series({1: 1}, base=0.5)

    def test_binned_law_from_design(self):
        dist = PowerLawDesign([3, 4, 5, 9, 16]).degree_distribution
        rows = log_bin_series(dist)
        assert sum(c for _, c in rows) == dist.num_vertices()
