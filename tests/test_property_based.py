"""Property-based tests (hypothesis) for core invariants.

Each property mirrors a theorem the paper relies on:

* Kronecker identities (Section II): associativity, mixed product,
  nnz/vertex multiplicativity;
* degree-distribution identity (Section IV): n_A = ⊗ n_Ak;
* triangle factorization (Section IV-A);
* partition invariants (Section V): balance, disjoint union;
* sparse-kernel correctness against dense NumPy oracles.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import DegreeDistribution, PowerLawDesign, chain_properties
from repro.graphs import Graph, star_adjacency
from repro.kron import KroneckerChain, kron
from repro.parallel import ParallelKroneckerGenerator, VirtualCluster
from repro.sparse import from_dense
from repro.validate import validate_design

# -- strategies ---------------------------------------------------------------

star_sizes = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)
loops = st.sampled_from([None, "center", "leaf"])


@st.composite
def small_dense(draw, max_n=5, square=False):
    n = draw(st.integers(1, max_n))
    m = n if square else draw(st.integers(1, max_n))
    elems = st.integers(0, 3)
    rows = draw(
        st.lists(
            st.lists(elems, min_size=m, max_size=m), min_size=n, max_size=n
        )
    )
    return np.asarray(rows, dtype=np.int64)


@st.composite
def degree_maps(draw):
    return draw(
        st.dictionaries(
            st.integers(1, 50), st.integers(1, 20), min_size=1, max_size=6
        )
    )


# -- sparse kernels vs dense oracle ----------------------------------------------


@given(small_dense(), small_dense())
@settings(max_examples=60, deadline=None)
def test_sparse_roundtrip_and_transpose(a, b):
    sa = from_dense(a)
    np.testing.assert_array_equal(sa.to_dense(), a)
    np.testing.assert_array_equal(sa.T.to_dense(), a.T)
    np.testing.assert_array_equal(sa.to_csr().to_dense(), a)
    np.testing.assert_array_equal(sa.to_csc().to_dense(), a)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_spgemm_matches_dense(data):
    n = data.draw(st.integers(1, 5))
    k = data.draw(st.integers(1, 5))
    m = data.draw(st.integers(1, 5))
    a = np.asarray(
        data.draw(st.lists(st.lists(st.integers(0, 3), min_size=k, max_size=k), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    b = np.asarray(
        data.draw(st.lists(st.lists(st.integers(0, 3), min_size=m, max_size=m), min_size=k, max_size=k)),
        dtype=np.int64,
    )
    out = from_dense(a).to_csr().matmul(from_dense(b).to_csr())
    np.testing.assert_array_equal(out.to_dense(), a @ b)


@given(small_dense(max_n=4), small_dense(max_n=4))
@settings(max_examples=60, deadline=None)
def test_kron_matches_numpy(a, b):
    np.testing.assert_array_equal(
        kron(from_dense(a), from_dense(b)).to_dense(), np.kron(a, b)
    )


@given(small_dense(max_n=3), small_dense(max_n=3), small_dense(max_n=3))
@settings(max_examples=40, deadline=None)
def test_kron_associativity(a, b, c):
    sa, sb, sc = from_dense(a), from_dense(b), from_dense(c)
    assert kron(kron(sa, sb), sc).equal(kron(sa, kron(sb, sc)))


@given(
    small_dense(max_n=3, square=True),
    small_dense(max_n=3, square=True),
    small_dense(max_n=3, square=True),
    small_dense(max_n=3, square=True),
)
@settings(max_examples=40, deadline=None)
def test_mixed_product_identity(a, b, c, d):
    # Shapes must chain: A, C are n x n; B, D are m x m — enforced by
    # drawing square matrices and pairing by size.
    if a.shape != c.shape or b.shape != d.shape:
        return
    sa, sb, sc, sd = map(from_dense, (a, b, c, d))
    lhs = kron(sa, sb).matmul(kron(sc, sd))
    rhs = kron(sa.matmul(sc), sb.matmul(sd))
    assert lhs.equal(rhs)


# -- degree distribution algebra ------------------------------------------------------


@given(degree_maps(), degree_maps())
@settings(max_examples=80, deadline=None)
def test_distribution_kron_totals_multiply(da, db):
    a, b = DegreeDistribution(da), DegreeDistribution(db)
    c = a.kron(b)
    assert c.num_vertices() == a.num_vertices() * b.num_vertices()
    assert c.total_nnz() == a.total_nnz() * b.total_nnz()


@given(degree_maps(), degree_maps())
@settings(max_examples=60, deadline=None)
def test_distribution_kron_commutes(da, db):
    a, b = DegreeDistribution(da), DegreeDistribution(db)
    assert a.kron(b) == b.kron(a)


@given(degree_maps(), degree_maps(), degree_maps())
@settings(max_examples=40, deadline=None)
def test_distribution_kron_associates(da, db, dc):
    a, b, c = (DegreeDistribution(d) for d in (da, db, dc))
    assert a.kron(b).kron(c) == a.kron(b.kron(c))


# -- design-vs-realization (the paper's central claim) ------------------------------


@given(star_sizes, loops)
@settings(max_examples=25, deadline=None)
def test_design_predictions_match_realized_graph(sizes, loop):
    design = PowerLawDesign(sizes, loop)
    if design.num_vertices > 3000 or design.raw_nnz > 40_000:
        return  # keep realization cheap
    report = validate_design(design)
    assert report.passed, report.to_text()


@given(st.lists(st.integers(1, 5), min_size=2, max_size=3))
@settings(max_examples=20, deadline=None)
def test_chain_properties_match_materialized(sizes):
    mats = [star_adjacency(m) for m in sizes]
    props = chain_properties(mats)
    g = Graph(KroneckerChain(mats).materialize())
    assert props.num_vertices == g.num_vertices
    assert props.nnz == g.num_edges
    assert props.degree_distribution == g.degree_distribution()


# -- partition invariants -----------------------------------------------------------


@given(st.lists(st.integers(2, 5), min_size=2, max_size=3), st.integers(1, 9))
@settings(max_examples=25, deadline=None)
def test_parallel_union_equals_serial(sizes, n_ranks):
    chain = KroneckerChain([star_adjacency(m) for m in sizes])
    b_nnz = chain.factors[0].nnz
    if b_nnz < n_ranks:
        n_ranks = b_nnz
    gen = ParallelKroneckerGenerator(
        chain, VirtualCluster(n_ranks), split_index=1
    )
    blocks = gen.generate_blocks()
    counts = [b.nnz for b in blocks]
    # Balance: counts differ by at most nnz(C) (one B triple's fanout).
    assert max(counts) - min(counts) <= gen.plan.c_chain.nnz
    assert gen.assemble(blocks).equal(chain.materialize())
