"""Unit tests for the runtime observability layer (metrics + tracing)."""

import json

import pytest

from repro.errors import ReproError
from repro.runtime import (
    ListSink,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    write_snapshot,
)
from repro.runtime.metrics import Histogram


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        assert reg.snapshot()["counters"]["c"] == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.snapshot() == 3.0

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestHistogram:
    def test_buckets_cumulative(self):
        h = Histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"le_1": 2, "le_10": 3, "le_inf": 4}
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(56.2 / 4)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("h", buckets=[1.0]).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=[2.0, 1.0])


class TestSnapshotRoundTrip:
    def test_snapshot_survives_json(self):
        reg = MetricsRegistry()
        reg.counter("ranks.completed").inc(4)
        reg.gauge("ranks.total").set(4)
        reg.histogram("rank.elapsed_s", buckets=[0.1, 1.0]).observe(0.05)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_write_snapshot_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("edges").inc(480)
        path = write_snapshot(tmp_path / "m.json", reg.snapshot())
        loaded = json.load(open(path))
        assert loaded["counters"]["edges"] == 480

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTracer:
    def test_nested_spans_record_parent_and_depth(self):
        clock = FakeClock()
        sink = ListSink()
        tracer = Tracer(sink, clock=clock)
        with tracer.span("outer", ranks=2):
            clock.advance(1.0)
            with tracer.span("inner", rank=0):
                clock.advance(0.25)
            clock.advance(1.0)
        inner, outer = sink.spans
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert inner.elapsed_s == pytest.approx(0.25)
        assert outer.elapsed_s == pytest.approx(2.25)
        assert outer.attributes == {"ranks": 2}

    def test_span_to_dict_is_json_ready(self):
        clock = FakeClock()
        sink = ListSink()
        tracer = Tracer(sink, clock=clock)
        with tracer.span("op", rank=3):
            clock.advance(0.5)
        d = sink.spans[0].to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["attributes"] == {"rank": 3}

    def test_current_span(self):
        tracer = Tracer(ListSink())
        assert tracer.current is None
        with tracer.span("a") as s:
            assert tracer.current is s
        assert tracer.current is None

    def test_default_tracer_helper(self):
        from repro.runtime import DEFAULT_TRACER, span

        before = len(DEFAULT_TRACER.sink.spans("helper.test"))
        with span("helper.test"):
            pass
        assert len(DEFAULT_TRACER.sink.spans("helper.test")) == before + 1


class TestRingBufferSink:
    def test_evicts_oldest(self):
        clock = FakeClock()
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sink, clock=clock)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                clock.advance(0.1)
        assert [s.name for s in sink.spans()] == ["b", "c"]

    def test_filter_by_name(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("x"):
            pass
        with tracer.span("y"):
            pass
        assert [s.name for s in sink.spans("y")] == ["y"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ReproError):
            RingBufferSink(0)
