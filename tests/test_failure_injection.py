"""Failure injection: prove the validators catch every fault class.

The paper's pitch is *validation* — so the validation layer must fail
loudly when generation is wrong, not just pass when it is right.  Each
test corrupts one specific thing (a dropped edge, a duplicated block, a
stray self-loop, a tampered file, a wrong prediction) and asserts the
corresponding check reports it.
"""

import numpy as np
import pytest

from repro.design import DegreeDistribution, PowerLawDesign
from repro.errors import FatalRankError, RetryExhaustedError
from repro.graphs import Graph
from repro.runtime import FailureInjector
from repro.parallel import (
    ParallelKroneckerGenerator,
    VirtualCluster,
    generate_to_disk,
    read_streamed_degree_distribution,
)
from repro.parallel.generator import RankBlock
from repro.sparse.coo import COOMatrix
from repro.validate import (
    audit_graph_structure,
    audit_partition,
    check_degree_distribution,
    check_triangles,
    validate_design,
)

DESIGN = PowerLawDesign([3, 4, 5], "center")


def drop_one_edge(graph: Graph) -> Graph:
    """Remove one undirected edge (both stored directions)."""
    coo = graph.adjacency
    # Pick the first off-diagonal entry and drop it with its mirror.
    off = np.flatnonzero(coo.rows != coo.cols)[0]
    i, j = int(coo.rows[off]), int(coo.cols[off])
    return Graph(coo.with_entry(i, j, 0).with_entry(j, i, 0))


def drop_one_direction(graph: Graph) -> Graph:
    """Remove a single stored direction, breaking symmetry."""
    coo = graph.adjacency
    keep = np.ones(coo.nnz, dtype=bool)
    keep[0] = False
    return Graph(
        COOMatrix(coo.shape, coo.rows[keep], coo.cols[keep], coo.vals[keep], _canonical=True)
    )


class TestDegreeCheckCatches:
    def test_dropped_edge(self):
        corrupted = drop_one_edge(DESIGN.realize())
        check = check_degree_distribution(corrupted, DESIGN.degree_distribution)
        assert not check.exact_match
        assert len(check.mismatches) >= 1

    def test_extra_edge(self):
        graph = DESIGN.realize()
        coo = graph.adjacency
        # Add a bogus edge between two previously non-adjacent vertices.
        bogus = Graph(coo.with_entry(1, 2, 1).with_entry(2, 1, 1))
        check = check_degree_distribution(bogus, DESIGN.degree_distribution)
        assert not check.exact_match

    def test_wrong_prediction_detected_symmetrically(self):
        graph = DESIGN.realize()
        wrong = DegreeDistribution(
            {d: c for d, c in DESIGN.degree_distribution.items()}
        ).shift_vertex(1, 2)
        assert not check_degree_distribution(graph, wrong).exact_match


class TestTriangleCheckCatches:
    def test_dropped_edge_changes_triangles(self):
        corrupted = drop_one_edge(DESIGN.realize())
        check = check_triangles(corrupted, DESIGN.num_triangles)
        assert not check.exact_match

    def test_wrong_prediction(self):
        check = check_triangles(DESIGN.realize(), DESIGN.num_triangles + 1)
        assert not check.exact_match
        assert "MISMATCH" in check.to_text()

    def test_asymmetric_graph_reported_not_raised(self):
        # Validation must report a corrupted (asymmetric) graph, never
        # crash on it.
        broken = drop_one_direction(DESIGN.realize())
        check = check_triangles(broken, DESIGN.num_triangles)
        assert not check.exact_match
        assert check.error is not None
        assert "UNCOUNTABLE" in check.to_text()


class TestStructureAuditCatches:
    def test_leftover_self_loop(self):
        # Simulate forgetting the loop-removal step.
        raw = DESIGN.to_chain().materialize()
        audit = audit_graph_structure(Graph(raw))
        assert not audit.clean
        assert audit.num_self_loops == 1

    def test_asymmetry(self):
        coo = DESIGN.realize().adjacency
        broken = Graph(coo.with_entry(int(coo.rows[0]), int(coo.cols[0]), 0))
        audit = audit_graph_structure(broken)
        assert not audit.symmetric

    def test_empty_vertices(self):
        from repro.sparse import from_edges

        audit = audit_graph_structure(Graph(from_edges(10, [(0, 1)])))
        assert audit.num_empty_vertices == 8
        assert not audit.clean


class TestPartitionAuditCatches:
    def _generator(self):
        return ParallelKroneckerGenerator(DESIGN.to_chain(), VirtualCluster(4))

    def test_missing_block(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks[:-1], DESIGN.raw_nnz)
        assert not audit.complete
        assert audit.total_nnz < audit.expected_nnz

    def test_duplicated_block(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        dup = blocks + [blocks[0]]
        audit = audit_partition(gen.plan, dup, DESIGN.raw_nnz)
        assert not audit.disjoint
        assert not audit.complete

    def test_imbalanced_blocks_flagged(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        # Replace rank 0's block with a half-truncated impostor.
        b0 = blocks[0]
        half = b0.nnz // 2
        truncated = RankBlock(
            rank=0,
            block=COOMatrix(
                b0.block.shape,
                b0.block.rows[:half],
                b0.block.cols[:half],
                b0.block.vals[:half],
                _canonical=True,
            ),
            col_base=b0.col_base,
            c_cols=b0.c_cols,
            elapsed_s=0.0,
        )
        tampered = [truncated] + list(blocks[1:])
        audit = audit_partition(gen.plan, tampered, DESIGN.raw_nnz)
        assert not audit.complete
        assert not audit.balanced


class TestStreamedValidationCatches:
    def test_truncated_rank_file(self, tmp_path):
        summary = generate_to_disk(DESIGN, 4, tmp_path)
        victim = summary.files[2]
        lines = open(victim).read().splitlines()
        with open(victim, "w") as fh:
            fh.write("\n".join(lines[:-3]) + "\n")
        measured = read_streamed_degree_distribution(
            summary.files, DESIGN.num_vertices
        )
        check = check_degree_distribution(measured, DESIGN.degree_distribution)
        assert not check.exact_match

    def test_duplicated_rank_file(self, tmp_path):
        summary = generate_to_disk(DESIGN, 4, tmp_path)
        files = list(summary.files) + [summary.files[0]]
        measured = read_streamed_degree_distribution(files, DESIGN.num_vertices)
        assert measured != DESIGN.degree_distribution


class TestRetryRecoversFromInjectedFailures:
    """Injected rank failures must be retried and succeed, not abort."""

    def _generator(self, **kwargs):
        return ParallelKroneckerGenerator(
            DESIGN.to_chain(), VirtualCluster(4), **kwargs
        )

    def test_injected_failures_recovered_and_assembly_exact(self):
        chain = DESIGN.to_chain()
        gen = self._generator(
            max_retries=2,
            failure_injector=FailureInjector([0, 2], fail_attempts=1),
        )
        assembled = gen.assemble()
        assert assembled.nnz == chain.nnz
        assert assembled.equal(chain.materialize())
        assert gen.last_execution.total_retries == 2
        assert [r.retries for r in gen.last_execution.reports] == [1, 0, 1, 0]

    def test_every_rank_failing_once_still_succeeds(self):
        gen = self._generator(
            max_retries=1,
            failure_injector=FailureInjector([0, 1, 2, 3], fail_attempts=1),
        )
        blocks = gen.generate_blocks()
        assert sum(b.nnz for b in blocks) == DESIGN.to_chain().nnz

    def test_without_retry_budget_injection_aborts(self):
        gen = self._generator(
            max_retries=0, failure_injector=FailureInjector([1])
        )
        with pytest.raises(RetryExhaustedError):
            gen.generate_blocks()

    def test_fatal_injection_not_retried(self):
        gen = self._generator(
            max_retries=5,
            failure_injector=FailureInjector([2], fatal=True),
        )
        with pytest.raises(FatalRankError):
            gen.generate_blocks()

    def test_retries_survive_multiprocessing_boundary(self):
        from repro.parallel import MultiprocessingBackend

        chain = DESIGN.to_chain()
        gen = ParallelKroneckerGenerator(
            chain,
            VirtualCluster(4),
            backend=MultiprocessingBackend(processes=2),
            max_retries=2,
            failure_injector=FailureInjector([1, 3], fail_attempts=1),
        )
        assert gen.assemble().nnz == chain.nnz
        assert gen.last_execution.total_retries == 2

    def test_recovered_run_passes_partition_audit(self):
        gen = self._generator(
            max_retries=2, failure_injector=FailureInjector([0], fail_attempts=2)
        )
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks, DESIGN.raw_nnz)
        assert audit.complete
        assert audit.disjoint


class TestEndToEndReportCatches:
    def test_report_flags_wrong_graph(self):
        report = validate_design(DESIGN, graph=PowerLawDesign([3, 4, 5], "leaf").realize())
        assert not report.passed
        # Degree distribution and triangles both disagree.
        assert not report.triangle_check.exact_match

    def test_report_flags_corrupted_graph(self):
        report = validate_design(DESIGN, graph=drop_one_edge(DESIGN.realize()))
        assert not report.passed
        assert not report.edges_match
