"""Failure injection: prove the validators catch every fault class.

The paper's pitch is *validation* — so the validation layer must fail
loudly when generation is wrong, not just pass when it is right.  Each
test corrupts one specific thing (a dropped edge, a duplicated block, a
stray self-loop, a tampered file, a wrong prediction) and asserts the
corresponding check reports it.
"""

from dataclasses import dataclass as _dataclass

import numpy as np
import pytest

from repro.design import DegreeDistribution, PowerLawDesign
from repro.errors import FatalRankError, RetryExhaustedError
from repro.graphs import Graph
from repro.runtime import FailureInjector
from repro.parallel import (
    ParallelKroneckerGenerator,
    VirtualCluster,
    generate_to_disk,
    read_streamed_degree_distribution,
)
from repro.parallel.generator import RankBlock
from repro.sparse.coo import COOMatrix
from repro.validate import (
    audit_graph_structure,
    audit_partition,
    check_degree_distribution,
    check_triangles,
    validate_design,
)

DESIGN = PowerLawDesign([3, 4, 5], "center")


def drop_one_edge(graph: Graph) -> Graph:
    """Remove one undirected edge (both stored directions)."""
    coo = graph.adjacency
    # Pick the first off-diagonal entry and drop it with its mirror.
    off = np.flatnonzero(coo.rows != coo.cols)[0]
    i, j = int(coo.rows[off]), int(coo.cols[off])
    return Graph(coo.with_entry(i, j, 0).with_entry(j, i, 0))


def drop_one_direction(graph: Graph) -> Graph:
    """Remove a single stored direction, breaking symmetry."""
    coo = graph.adjacency
    keep = np.ones(coo.nnz, dtype=bool)
    keep[0] = False
    return Graph(
        COOMatrix(coo.shape, coo.rows[keep], coo.cols[keep], coo.vals[keep], _canonical=True)
    )


class TestDegreeCheckCatches:
    def test_dropped_edge(self):
        corrupted = drop_one_edge(DESIGN.realize())
        check = check_degree_distribution(corrupted, DESIGN.degree_distribution)
        assert not check.exact_match
        assert len(check.mismatches) >= 1

    def test_extra_edge(self):
        graph = DESIGN.realize()
        coo = graph.adjacency
        # Add a bogus edge between two previously non-adjacent vertices.
        bogus = Graph(coo.with_entry(1, 2, 1).with_entry(2, 1, 1))
        check = check_degree_distribution(bogus, DESIGN.degree_distribution)
        assert not check.exact_match

    def test_wrong_prediction_detected_symmetrically(self):
        graph = DESIGN.realize()
        wrong = DegreeDistribution(
            {d: c for d, c in DESIGN.degree_distribution.items()}
        ).shift_vertex(1, 2)
        assert not check_degree_distribution(graph, wrong).exact_match


class TestTriangleCheckCatches:
    def test_dropped_edge_changes_triangles(self):
        corrupted = drop_one_edge(DESIGN.realize())
        check = check_triangles(corrupted, DESIGN.num_triangles)
        assert not check.exact_match

    def test_wrong_prediction(self):
        check = check_triangles(DESIGN.realize(), DESIGN.num_triangles + 1)
        assert not check.exact_match
        assert "MISMATCH" in check.to_text()

    def test_asymmetric_graph_reported_not_raised(self):
        # Validation must report a corrupted (asymmetric) graph, never
        # crash on it.
        broken = drop_one_direction(DESIGN.realize())
        check = check_triangles(broken, DESIGN.num_triangles)
        assert not check.exact_match
        assert check.error is not None
        assert "UNCOUNTABLE" in check.to_text()


class TestStructureAuditCatches:
    def test_leftover_self_loop(self):
        # Simulate forgetting the loop-removal step.
        raw = DESIGN.to_chain().materialize()
        audit = audit_graph_structure(Graph(raw))
        assert not audit.clean
        assert audit.num_self_loops == 1

    def test_asymmetry(self):
        coo = DESIGN.realize().adjacency
        broken = Graph(coo.with_entry(int(coo.rows[0]), int(coo.cols[0]), 0))
        audit = audit_graph_structure(broken)
        assert not audit.symmetric

    def test_empty_vertices(self):
        from repro.sparse import from_edges

        audit = audit_graph_structure(Graph(from_edges(10, [(0, 1)])))
        assert audit.num_empty_vertices == 8
        assert not audit.clean


class TestPartitionAuditCatches:
    def _generator(self):
        return ParallelKroneckerGenerator(DESIGN.to_chain(), VirtualCluster(4))

    def test_missing_block(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks[:-1], DESIGN.raw_nnz)
        assert not audit.complete
        assert audit.total_nnz < audit.expected_nnz

    def test_duplicated_block(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        dup = blocks + [blocks[0]]
        audit = audit_partition(gen.plan, dup, DESIGN.raw_nnz)
        assert not audit.disjoint
        assert not audit.complete

    def test_imbalanced_blocks_flagged(self):
        gen = self._generator()
        blocks = gen.generate_blocks()
        # Replace rank 0's block with a half-truncated impostor.
        b0 = blocks[0]
        half = b0.nnz // 2
        truncated = RankBlock(
            rank=0,
            block=COOMatrix(
                b0.block.shape,
                b0.block.rows[:half],
                b0.block.cols[:half],
                b0.block.vals[:half],
                _canonical=True,
            ),
            col_base=b0.col_base,
            c_cols=b0.c_cols,
            elapsed_s=0.0,
        )
        tampered = [truncated] + list(blocks[1:])
        audit = audit_partition(gen.plan, tampered, DESIGN.raw_nnz)
        assert not audit.complete
        assert not audit.balanced


class TestStreamedValidationCatches:
    def test_truncated_rank_file(self, tmp_path):
        summary = generate_to_disk(DESIGN, 4, tmp_path)
        victim = summary.files[2]
        lines = open(victim).read().splitlines()
        with open(victim, "w") as fh:
            fh.write("\n".join(lines[:-3]) + "\n")
        measured = read_streamed_degree_distribution(
            summary.files, DESIGN.num_vertices
        )
        check = check_degree_distribution(measured, DESIGN.degree_distribution)
        assert not check.exact_match

    def test_duplicated_rank_file(self, tmp_path):
        summary = generate_to_disk(DESIGN, 4, tmp_path)
        files = list(summary.files) + [summary.files[0]]
        measured = read_streamed_degree_distribution(files, DESIGN.num_vertices)
        assert measured != DESIGN.degree_distribution


class TestRetryRecoversFromInjectedFailures:
    """Injected rank failures must be retried and succeed, not abort."""

    def _generator(self, **kwargs):
        return ParallelKroneckerGenerator(
            DESIGN.to_chain(), VirtualCluster(4), **kwargs
        )

    def test_injected_failures_recovered_and_assembly_exact(self):
        chain = DESIGN.to_chain()
        gen = self._generator(
            max_retries=2,
            failure_injector=FailureInjector([0, 2], fail_attempts=1),
        )
        assembled = gen.assemble()
        assert assembled.nnz == chain.nnz
        assert assembled.equal(chain.materialize())
        assert gen.last_execution.total_retries == 2
        assert [r.retries for r in gen.last_execution.reports] == [1, 0, 1, 0]

    def test_every_rank_failing_once_still_succeeds(self):
        gen = self._generator(
            max_retries=1,
            failure_injector=FailureInjector([0, 1, 2, 3], fail_attempts=1),
        )
        blocks = gen.generate_blocks()
        assert sum(b.nnz for b in blocks) == DESIGN.to_chain().nnz

    def test_without_retry_budget_injection_aborts(self):
        gen = self._generator(
            max_retries=0, failure_injector=FailureInjector([1])
        )
        with pytest.raises(RetryExhaustedError):
            gen.generate_blocks()

    def test_fatal_injection_not_retried(self):
        gen = self._generator(
            max_retries=5,
            failure_injector=FailureInjector([2], fatal=True),
        )
        with pytest.raises(FatalRankError):
            gen.generate_blocks()

    def test_retries_survive_multiprocessing_boundary(self):
        from repro.parallel import MultiprocessingBackend

        chain = DESIGN.to_chain()
        gen = ParallelKroneckerGenerator(
            chain,
            VirtualCluster(4),
            backend=MultiprocessingBackend(processes=2),
            max_retries=2,
            failure_injector=FailureInjector([1, 3], fail_attempts=1),
        )
        assert gen.assemble().nnz == chain.nnz
        assert gen.last_execution.total_retries == 2

    def test_recovered_run_passes_partition_audit(self):
        gen = self._generator(
            max_retries=2, failure_injector=FailureInjector([0], fail_attempts=2)
        )
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks, DESIGN.raw_nnz)
        assert audit.complete
        assert audit.disjoint


class TestEndToEndReportCatches:
    def test_report_flags_wrong_graph(self):
        report = validate_design(DESIGN, graph=PowerLawDesign([3, 4, 5], "leaf").realize())
        assert not report.passed
        # Degree distribution and triangles both disagree.
        assert not report.triangle_check.exact_match

    def test_report_flags_corrupted_graph(self):
        report = validate_design(DESIGN, graph=drop_one_edge(DESIGN.realize()))
        assert not report.passed
        assert not report.edges_match


class TestTransportChaos:
    """Frame-level faults on the collection wire: a transported run must
    either produce byte-identical output or fail with a *typed* transport
    error that leaves the inner ShardSink resumable — never silently
    lose or corrupt edges.

    Frame send order is deterministic here (3 ranks, one tile each):
    0=OPEN, 1=TILE r0, 2=COMMIT r0, 3=TILE r1, 4=COMMIT r1, ... so each
    test aims its fault at a known frame.
    """

    N_RANKS = 3

    def _run_with_faults(self, tmp_path, **fault_kwargs):
        from repro.engine import ShardSink, plan_from_design
        from repro.net import FaultyTransport, InProcessTransport, execute_over_transport

        plan = plan_from_design(DESIGN, self.N_RANKS)
        producer, collector_end = InProcessTransport.pair()
        faulty = FaultyTransport(producer, **fault_kwargs)
        return lambda: execute_over_transport(
            plan,
            ShardSink(tmp_path),
            transport=(faulty, collector_end),
            recv_timeout_s=5.0,
        )

    def _assert_failed_then_resumable(self, tmp_path):
        """The chaos run left a resumable checkpoint: a retry converges
        to output byte-identical to a never-faulted run."""
        from repro.runtime.checkpoint import RunManifest

        assert RunManifest.load(tmp_path).status in ("failed", "in_progress")
        summary = generate_to_disk(DESIGN, self.N_RANKS, tmp_path, resume=True)
        clean = tmp_path.parent / "clean"
        generate_to_disk(DESIGN, self.N_RANKS, clean)
        for rank in range(self.N_RANKS):
            mine = (tmp_path / f"edges.{rank}.tsv").read_bytes()
            theirs = (clean / f"edges.{rank}.tsv").read_bytes()
            assert mine == theirs
        assert summary.total_edges == DESIGN.num_edges

    def test_dropped_tile_frame_detected_and_resumable(self, tmp_path):
        from repro.errors import FrameSequenceError, TransportError

        with pytest.raises(FrameSequenceError) as excinfo:
            self._run_with_faults(tmp_path, drop={1})()
        assert isinstance(excinfo.value, TransportError)
        self._assert_failed_then_resumable(tmp_path)

    def test_duplicated_tile_frame_detected(self, tmp_path):
        from repro.errors import FrameSequenceError

        with pytest.raises(FrameSequenceError, match="duplicated, or reordered"):
            self._run_with_faults(tmp_path, duplicate={1})()
        self._assert_failed_then_resumable(tmp_path)

    def test_reordered_frames_detected(self, tmp_path):
        from repro.errors import FrameSequenceError

        # Frame 1 (TILE r0) held back and sent after frame 2 (COMMIT r0):
        # the commit then declares a tile that has not arrived.
        with pytest.raises(FrameSequenceError):
            self._run_with_faults(tmp_path, swap={1})()
        self._assert_failed_then_resumable(tmp_path)

    def test_corrupted_frame_body_is_an_integrity_error(self, tmp_path):
        from repro.errors import FrameIntegrityError

        with pytest.raises(FrameIntegrityError, match="CRC"):
            self._run_with_faults(tmp_path, corrupt={1})()
        self._assert_failed_then_resumable(tmp_path)

    def test_corrupted_magic_is_a_codec_error(self, tmp_path):
        from repro.errors import FrameCodecError, FrameIntegrityError

        # Frame 0 is the OPEN handshake: the run dies before the inner
        # sink ever opens, so no checkpoint exists — a clean rerun into
        # the same directory must just work.
        with pytest.raises(FrameCodecError) as excinfo:
            self._run_with_faults(tmp_path, corrupt={0}, corrupt_offset=0)()
        assert not isinstance(excinfo.value, FrameIntegrityError)
        assert not (tmp_path / "manifest.json").exists()
        summary = generate_to_disk(DESIGN, self.N_RANKS, tmp_path)
        assert summary.total_edges == DESIGN.num_edges

    def test_fault_free_faulty_transport_is_transparent(self, tmp_path):
        # The adversary with no faults configured must not perturb bytes.
        result = self._run_with_faults(tmp_path)()
        assert result.sink_result.total_edges == DESIGN.num_edges
        clean = tmp_path.parent / "clean"
        generate_to_disk(DESIGN, self.N_RANKS, clean)
        for rank in range(self.N_RANKS):
            assert (tmp_path / f"edges.{rank}.tsv").read_bytes() == (
                clean / f"edges.{rank}.tsv"
            ).read_bytes()

    def test_collector_crash_mid_stream_leaves_resumable_shards(self, tmp_path):
        from repro.engine import ShardSink, plan_from_design
        from repro.net import execute_over_transport
        from repro.runtime.checkpoint import CrashInjector, RunManifest, SimulatedCrash

        plan = plan_from_design(DESIGN, self.N_RANKS)
        sink = ShardSink(tmp_path, crash_hook=CrashInjector(2))
        with pytest.raises(SimulatedCrash):
            execute_over_transport(
                plan, sink, transport="inproc", recv_timeout_s=5.0
            )
        # Two ranks were durably committed before the collector died.
        manifest = RunManifest.load(tmp_path)
        assert len(manifest.completed_ranks()) == 2
        self._assert_failed_then_resumable(tmp_path)

    def test_producer_abort_reaches_collector_as_failed_manifest(self, tmp_path):
        from repro.engine import ShardSink, plan_from_design
        from repro.net import execute_over_transport
        from repro.runtime.checkpoint import STATUS_FAILED, RunManifest

        plan = plan_from_design(DESIGN, self.N_RANKS)
        with pytest.raises(FatalRankError):
            execute_over_transport(
                plan,
                ShardSink(tmp_path),
                transport="inproc",
                recv_timeout_s=5.0,
                failure_injector=FailureInjector([1], fatal=True),
            )
        # The ABORT frame tore the remote sink down cleanly.
        assert RunManifest.load(tmp_path).status == STATUS_FAILED
        self._assert_failed_then_resumable(tmp_path)


class TestShmReclaimOnFailure:
    """Crashed zero-copy runs must not litter ``/dev/shm``.

    The coordinator owns every shared segment and ``execute`` reclaims
    the pool in a ``finally``, so even a run killed by a fatal rank
    error or retry exhaustion leaves the segment namespace exactly as
    it found it — and the ``engine.shm_leaked`` gauge records how many
    output segments the shutdown had to mop up.
    """

    def _generator(self, **kwargs):
        from repro.parallel import MultiprocessingBackend

        return ParallelKroneckerGenerator(
            DESIGN.to_chain(),
            VirtualCluster(4, memory_budget_entries=500),
            backend=MultiprocessingBackend(processes=2),
            **kwargs,
        )

    def test_fatal_failure_leaves_no_segments(self):
        from repro.parallel.shm import shm_segment_names

        before = shm_segment_names()
        gen = self._generator(
            max_retries=5,
            failure_injector=FailureInjector([2], fatal=True),
        )
        with pytest.raises(FatalRankError):
            gen.generate_blocks()
        assert shm_segment_names() == before

    def test_retry_exhaustion_leaves_no_segments(self):
        from repro.parallel.shm import shm_segment_names

        before = shm_segment_names()
        gen = self._generator(
            max_retries=0, failure_injector=FailureInjector([1])
        )
        with pytest.raises(RetryExhaustedError):
            gen.generate_blocks()
        assert shm_segment_names() == before

    def test_failed_run_records_reclaimed_outputs(self):
        from repro.runtime import MetricsRegistry

        metrics = MetricsRegistry()
        gen = self._generator(
            metrics=metrics,
            max_retries=0,
            failure_injector=FailureInjector([1]),
        )
        with pytest.raises(RetryExhaustedError):
            gen.generate_blocks()
        # The failing rank's output segment was never taken, so the
        # shutdown reclaimed at least it.
        assert metrics.gauge("engine.shm_leaked").value >= 1

    def test_recovered_zero_copy_run_is_exact_and_clean(self):
        from repro.parallel.shm import shm_segment_names
        from repro.runtime import MetricsRegistry

        before = shm_segment_names()
        metrics = MetricsRegistry()
        gen = self._generator(
            metrics=metrics,
            max_retries=2,
            failure_injector=FailureInjector([1, 3], fail_attempts=1),
        )
        blocks = gen.generate_blocks()
        assert sum(b.nnz for b in blocks) == DESIGN.to_chain().nnz
        assert shm_segment_names() == before
        assert metrics.gauge("engine.shm_leaked").value == 0


# -- worker churn at the worst possible moments -------------------------------
def _hold_tile_open(rank, attempt):
    """Injected delay so tiles are genuinely in flight when the
    adversary strikes (runs inside the worker, before the kernel)."""
    import time

    time.sleep(0.02)


@_dataclass(frozen=True)
class _KillWorkerProcessOnce:
    """Hard-kill the worker process the first time the chosen rank is
    dispatched; later dispatches see the flag file and run normally.
    Module-level and frozen so the multiprocessing pool can pickle it.
    """

    flag_dir: str
    rank: int

    def __call__(self, rank, attempt):
        import os
        from pathlib import Path

        if rank == self.rank:
            flag = Path(self.flag_dir) / "killed"
            if not flag.exists():
                flag.write_text("x")
                os._exit(21)


class TestRevocationChaos:
    """Spot-style revocation at the nastiest points in a run.

    The invariant under test is the elastic tentpole's hard guarantee:
    whatever the churn schedule — a worker killed mid-tile, a worker
    killed between a rank's commit and the run's finalize, a whole
    process pool broken — the shard bytes and manifest are identical to
    an uninterrupted static run.
    """

    N_RANKS = 8

    def _plan(self):
        from repro.engine import plan_from_design

        return plan_from_design(
            DESIGN, self.N_RANKS, memory_budget_entries=63
        )

    def _reference(self, tmp_path):
        from repro.engine import RunConfig, ShardSink, execute

        ref = tmp_path / "reference"
        execute(self._plan(), ShardSink(ref), config=RunConfig(backend="serial"))
        return self._snapshot(ref)

    @staticmethod
    def _snapshot(directory):
        from pathlib import Path

        return {
            p.name: p.read_bytes()
            for p in sorted(Path(directory).iterdir())
            if p.suffix == ".tsv" or p.name == "manifest.json"
        }

    def test_mid_tile_revocation_is_byte_identical(self, tmp_path):
        from repro.engine import RunConfig, ShardSink, WorkQueueScheduler, execute
        from repro.parallel import ThreadBackend
        from repro.runtime import ChurnAction, ElasticWorkerPool, WorkerRevoker

        reference = self._reference(tmp_path)
        pool = ElasticWorkerPool(
            ThreadBackend(max_workers=8), workers=3, lease_timeout_s=0.05
        )
        # At the first completion the other two members are holding
        # tiles open (the injected delay guarantees it): the revocation
        # lands mid-tile, busy member first.
        WorkerRevoker(
            [
                ChurnAction(trigger="complete", at=1, op="revoke"),
                ChurnAction(trigger="complete", at=2, op="add"),
            ]
        ).attach(pool)
        out = tmp_path / "churned"
        try:
            execute(
                self._plan(),
                ShardSink(out),
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
                failure_injector=_hold_tile_open,
            )
            assert pool.stats().revoked == 1
        finally:
            pool.shutdown()
        assert self._snapshot(out) == reference

    def test_revocation_between_commit_and_finalize(self, tmp_path):
        from repro.engine import RunConfig, ShardSink, WorkQueueScheduler, execute
        from repro.parallel import ThreadBackend
        from repro.runtime import ElasticWorkerPool

        reference = self._reference(tmp_path)
        pool = ElasticWorkerPool(
            ThreadBackend(max_workers=8), workers=3, lease_timeout_s=0.05
        )

        class RevokeAfterCommit(ShardSink):
            """Kills a worker right after the 3rd rank commits — inside
            the window between commit and finalize, where later ranks
            are still queued or in flight."""

            commits = 0

            def commit(inner_self, task, outcome):
                super().commit(task, outcome)
                inner_self.commits += 1
                if inner_self.commits == 3:
                    pool.revoke_workers(1)
                    pool.add_workers(1)

        out = tmp_path / "late-churn"
        sink = RevokeAfterCommit(out)
        try:
            execute(
                self._plan(),
                sink,
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
                failure_injector=_hold_tile_open,
            )
            assert pool.stats().revoked == 1
        finally:
            pool.shutdown()
        assert sink.commits == self.N_RANKS
        assert self._snapshot(out) == reference

    def test_worker_process_death_rebuilds_pool_and_matches(self, tmp_path):
        from repro.engine import RunConfig, ShardSink, WorkQueueScheduler, execute
        from repro.parallel import MultiprocessingBackend
        from repro.runtime import MetricsRegistry

        reference = self._reference(tmp_path)
        backend = MultiprocessingBackend(processes=2)
        metrics = MetricsRegistry()
        out = tmp_path / "process-death"
        try:
            execute(
                self._plan(),
                ShardSink(out),
                config=RunConfig(
                    backend=backend, scheduler=WorkQueueScheduler()
                ),
                metrics=metrics,
                failure_injector=_KillWorkerProcessOnce(str(tmp_path), 4),
            )
        finally:
            backend.shutdown()
        assert (tmp_path / "killed").exists()
        assert self._snapshot(out) == reference
        snap = metrics.snapshot()
        assert snap["counters"]["engine.reassigned_tasks"] >= 1
        assert snap["gauges"].get("engine.shm_leaked", 0) == 0
