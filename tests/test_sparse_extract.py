"""Unit tests for extraction / selection matrices (paper §7.17 excerpt)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import extract, from_dense, selection_matrix, zeros
from tests.conftest import random_dense


class TestSelectionMatrix:
    def test_structure(self):
        s = selection_matrix(4, np.array([2, 0]))
        expected = np.zeros((4, 2), dtype=np.int64)
        expected[2, 0] = 1
        expected[0, 1] = 1
        np.testing.assert_array_equal(s.to_dense(), expected)

    def test_empty_selection(self):
        s = selection_matrix(3, np.array([], dtype=np.int64))
        assert s.shape == (3, 0)

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            selection_matrix(2, np.array([2]))

    def test_identity_selection(self):
        from repro.sparse import eye

        s = selection_matrix(3, np.arange(3))
        assert s.equal(eye(3))


class TestExtract:
    def test_matches_numpy_fancy_indexing(self, rng):
        for _ in range(15):
            A = random_dense(rng, 6, 7)
            ri = rng.integers(0, 6, size=3)
            ci = rng.integers(0, 7, size=4)
            got = extract(from_dense(A), ri, ci)
            np.testing.assert_array_equal(got.to_dense(), A[np.ix_(ri, ci)])

    def test_repeated_indices_duplicate(self, rng):
        A = random_dense(rng, 4, 4)
        got = extract(from_dense(A), np.array([1, 1]), np.array([2]))
        np.testing.assert_array_equal(got.to_dense(), A[np.ix_([1, 1], [2])])

    def test_selection_matrix_identity(self, rng):
        # The paper's C = Sᵀ(i) A S(j) equals direct extraction.
        A = random_dense(rng, 5, 5)
        sa = from_dense(A)
        ri = np.array([4, 0, 2])
        ci = np.array([1, 3])
        direct = extract(sa, ri, ci)
        via = selection_matrix(5, ri).T.matmul(sa).matmul(selection_matrix(5, ci))
        assert via.equal(direct)

    def test_empty_matrix(self):
        got = extract(zeros((3, 3)), np.array([0, 1]), np.array([2]))
        assert got.shape == (2, 1)
        assert got.nnz == 0

    def test_bounds_checked(self, rng):
        sa = from_dense(random_dense(rng, 3, 3))
        with pytest.raises(ShapeError):
            extract(sa, np.array([3]), np.array([0]))
        with pytest.raises(ShapeError):
            extract(sa, np.array([0]), np.array([9]))

    def test_rejects_2d_indices(self, rng):
        sa = from_dense(random_dense(rng, 3, 3))
        with pytest.raises(ShapeError):
            extract(sa, np.array([[0]]), np.array([0]))
