"""Property-based tests of the repro.net wire codec.

The codec's promise is *checksum-or-refuse*: any frame it decodes is
exactly what was encoded, and anything else — any truncation, any
single flipped bit, any trailing garbage — raises a typed
:class:`~repro.errors.FrameCodecError` instead of yielding a garbage
tile.  Hypothesis hammers both directions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameCodecError, FrameIntegrityError
from repro.net.codec import (
    FRAME_MAGIC,
    FRAME_NAMES,
    HEADER_BYTES,
    decode_control_payload,
    decode_frame,
    decode_tile_payload,
    encode_control_payload,
    encode_frame,
    encode_tile_payload,
)

#: Every dtype legal on the wire, spanning kinds b/i/u/f and widths.
WIRE_DTYPES = [
    np.bool_,
    np.int8,
    np.int16,
    np.int32,
    np.int64,
    np.uint8,
    np.uint16,
    np.uint32,
    np.uint64,
    np.float32,
    np.float64,
]

frame_types = st.sampled_from(sorted(FRAME_NAMES))
ranks = st.integers(min_value=-1, max_value=2**31 - 1)
tile_indices = st.integers(min_value=-1, max_value=2**31 - 1)
payloads = st.binary(max_size=512)


def arrays_of(dtype, max_len=64):
    if np.dtype(dtype).kind == "f":
        elements = st.floats(
            allow_nan=False, allow_infinity=False, width=np.dtype(dtype).itemsize * 8
        )
    elif np.dtype(dtype).kind == "b":
        elements = st.booleans()
    else:
        info = np.iinfo(dtype)
        elements = st.integers(min_value=int(info.min), max_value=int(info.max))
    return st.lists(elements, max_size=max_len).map(
        lambda xs: np.asarray(xs, dtype=dtype)
    )


@st.composite
def tile_triples(draw):
    """Three equal-length 1-D arrays with independently drawn dtypes."""
    n = draw(st.integers(min_value=0, max_value=48))
    out = []
    for _ in range(3):
        dtype = draw(st.sampled_from(WIRE_DTYPES))
        if np.dtype(dtype).kind == "f":
            elements = st.floats(
                allow_nan=False,
                allow_infinity=False,
                width=np.dtype(dtype).itemsize * 8,
            )
        elif np.dtype(dtype).kind == "b":
            elements = st.booleans()
        else:
            info = np.iinfo(dtype)
            elements = st.integers(
                min_value=int(info.min), max_value=int(info.max)
            )
        xs = draw(st.lists(elements, min_size=n, max_size=n))
        out.append(np.asarray(xs, dtype=dtype))
    return tuple(out)


class TestFrameRoundtrip:
    @given(frame_types, payloads, ranks, tile_indices)
    def test_roundtrip_exact(self, frame_type, payload, rank, tile_index):
        data = encode_frame(frame_type, payload, rank=rank, tile_index=tile_index)
        frame = decode_frame(data)
        assert frame.frame_type == frame_type
        assert frame.rank == rank
        assert frame.tile_index == tile_index
        assert frame.payload == payload
        assert frame.type_name == FRAME_NAMES[frame_type]

    @given(frame_types, payloads)
    def test_encoded_length_is_header_plus_payload(self, frame_type, payload):
        assert len(encode_frame(frame_type, payload)) == HEADER_BYTES + len(payload)

    def test_unknown_frame_type_refused_at_encode(self):
        with pytest.raises(FrameCodecError):
            encode_frame(99, b"")


class TestFrameCorruption:
    @given(frame_types, st.binary(min_size=1, max_size=64), st.data())
    @settings(max_examples=200)
    def test_any_single_bit_flip_is_detected(self, frame_type, payload, data):
        encoded = encode_frame(frame_type, payload, rank=3, tile_index=1)
        pos = data.draw(
            st.integers(min_value=0, max_value=len(encoded) * 8 - 1),
            label="bit position",
        )
        mutated = bytearray(encoded)
        mutated[pos // 8] ^= 1 << (pos % 8)
        with pytest.raises(FrameCodecError):
            decode_frame(bytes(mutated))

    @given(frame_types, payloads, st.data())
    def test_any_truncation_is_detected(self, frame_type, payload, data):
        encoded = encode_frame(frame_type, payload)
        cut = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1), label="cut"
        )
        with pytest.raises(FrameCodecError):
            decode_frame(encoded[:cut])

    @given(frame_types, payloads, st.binary(min_size=1, max_size=16))
    def test_trailing_garbage_is_detected(self, frame_type, payload, extra):
        with pytest.raises(FrameCodecError):
            decode_frame(encode_frame(frame_type, payload) + extra)

    def test_bad_magic_is_a_codec_error_not_integrity(self):
        encoded = bytearray(encode_frame(3, b"x" * 8))
        encoded[0] ^= 0xFF
        with pytest.raises(FrameCodecError) as excinfo:
            decode_frame(bytes(encoded))
        assert not isinstance(excinfo.value, FrameIntegrityError)
        assert "magic" in str(excinfo.value)

    def test_payload_bit_flip_is_an_integrity_error(self):
        encoded = bytearray(encode_frame(3, b"x" * 8))
        encoded[HEADER_BYTES + 2] ^= 0x10
        with pytest.raises(FrameIntegrityError):
            decode_frame(bytes(encoded))

    def test_integrity_error_is_a_codec_error(self):
        # One except clause catches both structural and bit-rot damage.
        assert issubclass(FrameIntegrityError, FrameCodecError)

    def test_wrong_version_refused(self):
        import struct
        import zlib

        from repro.net.codec import _HEADER

        body = _HEADER.pack(FRAME_MAGIC, 0, 2, 3, 0, -1, -1, 0)[8:]
        crc = zlib.crc32(body) & 0xFFFFFFFF
        data = FRAME_MAGIC + struct.pack(">I", crc) + body
        with pytest.raises(FrameCodecError, match="version"):
            decode_frame(data)


class TestTilePayloadRoundtrip:
    @given(tile_triples())
    @settings(max_examples=150)
    def test_roundtrip_exact_values_and_dtypes(self, triple):
        rows, cols, vals = triple
        out = decode_tile_payload(encode_tile_payload(rows, cols, vals))
        for sent, got in zip((rows, cols, vals), out):
            assert got.dtype == sent.dtype
            np.testing.assert_array_equal(got, sent)

    @given(st.sampled_from(WIRE_DTYPES))
    def test_empty_tile_roundtrips(self, dtype):
        empty = np.zeros(0, dtype=dtype)
        out = decode_tile_payload(encode_tile_payload(empty, empty, empty))
        assert all(len(a) == 0 and a.dtype == np.dtype(dtype) for a in out)

    @given(tile_triples(), st.data())
    @settings(max_examples=100)
    def test_truncated_tile_payload_detected(self, triple, data):
        payload = encode_tile_payload(*triple)
        cut = data.draw(
            st.integers(min_value=0, max_value=len(payload) - 1), label="cut"
        )
        with pytest.raises(FrameCodecError):
            decode_tile_payload(payload[:cut])

    @given(tile_triples(), st.binary(min_size=1, max_size=8))
    def test_trailing_garbage_in_tile_payload_detected(self, triple, extra):
        with pytest.raises(FrameCodecError):
            decode_tile_payload(encode_tile_payload(*triple) + extra)

    def test_mismatched_lengths_refused(self):
        a = np.arange(3)
        with pytest.raises(FrameCodecError, match="length"):
            encode_tile_payload(a, a, np.arange(4))

    def test_2d_arrays_refused(self):
        a = np.zeros((2, 2))
        with pytest.raises(FrameCodecError, match="1-D"):
            encode_tile_payload(a, a, a)

    def test_object_dtype_refused(self):
        a = np.asarray(["x", "y"], dtype=object)
        with pytest.raises(FrameCodecError):
            encode_tile_payload(a, a, a)

    def test_decoded_arrays_are_writable_copies(self):
        a = np.arange(5, dtype=np.int64)
        rows, _, _ = decode_tile_payload(encode_tile_payload(a, a, a))
        rows[0] = 99  # must not raise (np.frombuffer views are read-only)


class TestControlPayload:
    json_values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**53), max_value=2**53)
        | st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126)),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8,
            ),
            children,
            max_size=4,
        ),
        max_leaves=10,
    )

    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=12,
            ),
            json_values,
            max_size=6,
        )
    )
    def test_roundtrip(self, doc):
        assert decode_control_payload(encode_control_payload(doc)) == doc

    def test_deterministic_bytes(self):
        # Same doc, any key order → same canonical bytes (manifests and
        # handshakes must not depend on dict iteration order).
        assert encode_control_payload(
            {"b": 1, "a": 2}
        ) == encode_control_payload({"a": 2, "b": 1})

    def test_non_ascii_text_roundtrips_via_escapes(self):
        # json escapes non-ASCII (\uXXXX), so the wire stays pure ASCII.
        doc = {"k": "naïve ▲"}
        payload = encode_control_payload(doc)
        payload.decode("ascii")  # must not raise
        assert decode_control_payload(payload) == doc

    def test_unencodable_value_refused(self):
        with pytest.raises(FrameCodecError):
            encode_control_payload({"k": b"raw bytes"})

    def test_non_object_refused_at_decode(self):
        with pytest.raises(FrameCodecError, match="object"):
            decode_control_payload(b"[1,2]")

    def test_invalid_bytes_refused(self):
        with pytest.raises(FrameCodecError):
            decode_control_payload(b"\xff\xfe not json")
