"""Unit tests for star constituents."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.graphs import Graph, SelfLoop, StarGraph, star_adjacency
from repro.sparse.linalg import degrees


class TestSelfLoopCoercion:
    def test_from_string(self):
        assert SelfLoop.coerce("center") is SelfLoop.CENTER
        assert SelfLoop.coerce("leaf") is SelfLoop.LEAF
        assert SelfLoop.coerce("none") is SelfLoop.NONE

    def test_from_none(self):
        assert SelfLoop.coerce(None) is SelfLoop.NONE

    def test_from_enum(self):
        assert SelfLoop.coerce(SelfLoop.LEAF) is SelfLoop.LEAF

    def test_invalid(self):
        with pytest.raises(DesignError):
            SelfLoop.coerce("corner")


class TestStarScalarProperties:
    def test_vertices(self):
        assert StarGraph(5).num_vertices == 6

    def test_nnz_plain(self):
        assert StarGraph(5).nnz == 10

    def test_nnz_with_loop(self):
        assert StarGraph(5, "center").nnz == 11
        assert StarGraph(5, "leaf").nnz == 11

    def test_rejects_empty_star(self):
        with pytest.raises(DesignError):
            StarGraph(0)

    def test_alpha_is_one(self):
        assert StarGraph(7).alpha == 1.0

    def test_max_degree(self):
        assert StarGraph(5).max_degree == 5
        assert StarGraph(5, "center").max_degree == 6
        assert StarGraph(5, "leaf").max_degree == 5
        assert StarGraph(1, "leaf").max_degree == 2


class TestStarDegreeMap:
    def test_plain(self):
        assert StarGraph(5).degree_map() == {1: 5, 5: 1}

    def test_center_loop(self):
        assert StarGraph(5, "center").degree_map() == {1: 5, 6: 1}

    def test_leaf_loop(self):
        assert StarGraph(5, "leaf").degree_map() == {1: 4, 2: 1, 5: 1}

    def test_m_hat_one_collapses(self):
        assert StarGraph(1).degree_map() == {1: 2}

    def test_m_hat_two_leaf_collision(self):
        # leaf-loop star with m̂=2: center degree 2 collides with looped leaf.
        assert StarGraph(2, "leaf").degree_map() == {1: 1, 2: 2}

    def test_degree_map_matches_adjacency(self):
        for m_hat in (1, 2, 3, 7):
            for loop in SelfLoop:
                star = StarGraph(m_hat, loop)
                measured = {}
                for d in degrees(star.adjacency()):
                    measured[int(d)] = measured.get(int(d), 0) + 1
                assert star.degree_map() == measured, (m_hat, loop)


class TestStarTriangleFactor:
    def test_plain_is_zero(self):
        assert StarGraph(9).triangle_factor == 0

    def test_center_closed_form(self):
        assert StarGraph(5, "center").triangle_factor == 16

    def test_leaf_is_constant_four(self):
        assert StarGraph(3, "leaf").triangle_factor == 4
        assert StarGraph(100, "leaf").triangle_factor == 4

    @pytest.mark.parametrize("m_hat", [1, 2, 3, 5, 9, 16])
    @pytest.mark.parametrize("loop", list(SelfLoop), ids=lambda l: l.value)
    def test_closed_form_matches_matrix_formula(self, m_hat, loop):
        star = StarGraph(m_hat, loop)
        g = Graph(star.adjacency())
        assert star.triangle_factor == g.triangle_formula_raw()


class TestStarAdjacency:
    def test_structure(self):
        a = star_adjacency(3).to_dense()
        expected = np.array(
            [[0, 1, 1, 1], [1, 0, 0, 0], [1, 0, 0, 0], [1, 0, 0, 0]]
        )
        np.testing.assert_array_equal(a, expected)

    def test_center_loop_position(self):
        a = star_adjacency(3, "center")
        assert a.get(0, 0) == 1

    def test_leaf_loop_position(self):
        a = star_adjacency(3, "leaf")
        assert a.get(3, 3) == 1

    def test_symmetric(self):
        for loop in SelfLoop:
            assert star_adjacency(4, loop).is_symmetric()

    def test_loop_vertex(self):
        assert StarGraph(4).loop_vertex() is None
        assert StarGraph(4, "center").loop_vertex() == 0
        assert StarGraph(4, "leaf").loop_vertex() == 4

    def test_invalid_m_hat(self):
        with pytest.raises(DesignError):
            star_adjacency(0)

    def test_star_is_power_law_with_alpha_one(self):
        # The paper's Section III observation: star degree distribution
        # has n(1) = m̂ and n(m̂) = 1, which sits on n(d) = m̂/d.
        star = StarGraph(9)
        dm = star.degree_map()
        assert dm[1] * 1 == dm[9] * 9 == 9
