"""Unit tests for PowerLawDesign — the core exact-design API."""

import pytest

from repro.design import PowerLawDesign
from repro.errors import DesignError
from repro.graphs import SelfLoop
from repro.validate import validate_design


class TestConstruction:
    def test_defaults(self):
        d = PowerLawDesign([3, 4])
        assert d.self_loop is SelfLoop.NONE
        assert d.num_stars == 2

    def test_string_loop(self):
        assert PowerLawDesign([3], "center").self_loop is SelfLoop.CENTER

    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            PowerLawDesign([])

    def test_rejects_bad_star(self):
        with pytest.raises(DesignError):
            PowerLawDesign([3, 0])

    def test_strict_power_law_rejects_collisions(self):
        # 2 * 2 collides with 4-as-a-degree? sizes (2, 2): subset products
        # {1, 2, 2, 4} collide.
        with pytest.raises(DesignError):
            PowerLawDesign([2, 2], strict_power_law=True)

    def test_strict_power_law_accepts_paper_sets(self):
        PowerLawDesign([3, 4, 5, 9, 16, 25], strict_power_law=True)

    def test_equality(self):
        assert PowerLawDesign([3, 4]) == PowerLawDesign([3, 4])
        assert PowerLawDesign([3, 4]) != PowerLawDesign([3, 4], "center")


class TestExactProperties:
    def test_fig1_values(self):
        d = PowerLawDesign([5, 3])
        assert d.num_vertices == 24
        assert d.num_edges == 60
        assert d.num_triangles == 0
        assert d.degree_distribution.to_dict() == {1: 15, 3: 5, 5: 3, 15: 1}

    def test_power_law_coefficient(self):
        assert PowerLawDesign([5, 3]).power_law_coefficient == 15

    def test_exact_power_law_flag(self):
        assert PowerLawDesign([5, 3]).is_exact_power_law()

    def test_alpha_one_for_plain_chain(self):
        assert PowerLawDesign([3, 4, 5]).alpha == pytest.approx(1.0)

    def test_center_loop_counts(self):
        d = PowerLawDesign([5, 3], "center")
        assert d.raw_nnz == 11 * 7
        assert d.num_edges == 76
        assert d.num_triangles == 15
        assert d.loop_vertex == 0
        assert d.loop_degree == 24

    def test_leaf_loop_counts(self):
        d = PowerLawDesign([5, 3], "leaf")
        assert d.num_edges == 76
        assert d.num_triangles == 1
        assert d.loop_vertex == 23
        assert d.loop_degree == 4

    def test_no_loop_vertex_for_plain(self):
        d = PowerLawDesign([5, 3])
        assert d.loop_vertex is None
        assert d.loop_degree is None

    def test_degree_distribution_totals_reconcile(self):
        for loop in (None, "center", "leaf"):
            d = PowerLawDesign([3, 4, 5], loop)
            dist = d.degree_distribution
            assert dist.num_vertices() == d.num_vertices
            assert dist.total_nnz() == d.num_edges

    def test_max_degree_center(self):
        d = PowerLawDesign([3, 4], "center")
        # loop vertex had degree 20 (= num_vertices), now 19.
        assert d.max_degree == 19


class TestRealization:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_realize_matches_prediction(self, loop):
        d = PowerLawDesign([3, 4, 2], loop)
        report = validate_design(d)
        assert report.passed, report.to_text()

    def test_realized_graph_has_no_loops(self):
        g = PowerLawDesign([3, 2], "center").realize()
        assert g.num_self_loops() == 0

    def test_realized_graph_has_no_empty_vertices(self):
        g = PowerLawDesign([3, 4, 5]).realize()
        assert g.num_empty_vertices() == 0

    def test_to_chain_keeps_raw_loops(self):
        chain = PowerLawDesign([3, 2], "center").to_chain()
        assert chain.entry(0, 0) == 1  # loop still present pre-removal

    def test_split(self):
        b, c = PowerLawDesign([3, 4, 5]).split(1)
        assert b.num_factors == 1
        assert c.num_factors == 2


class TestPaperNote:
    def test_fig3_prose_typo_documented(self):
        """The prose says m̂={3,4,5,9,16} for B, but the quoted 530,400
        vertices require the six-element set including 25."""
        five = PowerLawDesign([3, 4, 5, 9, 16])
        six = PowerLawDesign([3, 4, 5, 9, 16, 25])
        assert five.num_vertices != 530400
        assert six.num_vertices == 530400
        assert six.num_edges == 13824000
