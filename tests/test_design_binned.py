"""Unit tests for log-binned power-law designs."""

import pytest

from repro.design import (
    PowerLawDesign,
    binned_alpha,
    binned_series,
    is_exact_under_log_binning,
    log_binned_design,
)
from repro.errors import DesignError


class TestLogBinnedDesign:
    def test_sizes_are_tower_of_base(self):
        d = log_binned_design(3, 3)
        assert d.star_sizes == (3, 9, 81)

    def test_base_two_allowed(self):
        d = log_binned_design(2, 3)
        assert d.star_sizes == (2, 4, 16)

    def test_rejects_bad_base(self):
        with pytest.raises(DesignError):
            log_binned_design(1, 2)

    def test_rejects_zero_stars(self):
        with pytest.raises(DesignError):
            log_binned_design(3, 0)

    def test_rejects_oversized_tower(self):
        with pytest.raises(DesignError):
            log_binned_design(3, 6)  # 3^32 points

    def test_every_bin_holds_one_degree(self):
        d = log_binned_design(3, 3)
        series = binned_series(d, 3)
        # Exponent sums 0..(1+2+4): all 8 subset sums of {1,2,4}.
        assert [s for s, _ in series] == list(range(8))

    def test_exact_under_binning(self):
        for base, stars in ((2, 4), (3, 3), (5, 2)):
            d = log_binned_design(base, stars)
            assert is_exact_under_log_binning(d, base), (base, stars)

    def test_counts_follow_binned_law(self):
        d = log_binned_design(3, 3)
        series = binned_series(d, 3)
        total = 3 ** (1 + 2 + 4)
        for s, count in series:
            assert count * 3**s == total

    def test_binned_alpha_is_one(self):
        assert binned_alpha(log_binned_design(3, 3), 3) == pytest.approx(1.0)

    def test_also_exact_plainly(self):
        # The tower construction is exact under BOTH readings.
        assert log_binned_design(3, 3).is_exact_power_law()

    def test_realized_graph_matches(self):
        from repro.validate import validate_design

        assert validate_design(log_binned_design(2, 3)).passed


class TestBinnedSeriesGeneral:
    def test_generic_design_not_exact_binned(self):
        # Paper Fig-5-style sets are exact plainly but not under binning.
        d = PowerLawDesign([3, 4, 5])
        assert d.is_exact_power_law()
        assert not is_exact_under_log_binning(d, 2)

    def test_series_counts_total_vertices(self):
        d = PowerLawDesign([3, 4, 5])
        series = binned_series(d, 2)
        assert sum(c for _, c in series) == d.num_vertices

    def test_rejects_bad_base(self):
        with pytest.raises(DesignError):
            binned_series(PowerLawDesign([3]), 1)

    def test_alpha_needs_two_bins(self):
        with pytest.raises(DesignError):
            binned_alpha(PowerLawDesign([1]), 2)

    def test_huge_degrees_bin_exactly(self):
        # Float log noise must not misplace 10^25-scale degrees.
        d = PowerLawDesign(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
        )
        series = binned_series(d, 2)
        assert sum(c for _, c in series) == d.num_vertices
        exponents = [s for s, _ in series]
        assert exponents == sorted(exponents)
