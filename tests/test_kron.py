"""Unit tests for the Kronecker machinery (sparse, lazy, permutations)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graphs import Graph, star_adjacency
from repro.kron import (
    KroneckerChain,
    MixedRadix,
    component_permutation,
    connected_components,
    kron,
    kron_chain,
)
from repro.semiring import BOOL_OR_AND, MIN_PLUS
from repro.sparse import from_dense, from_edges, zeros
from tests.conftest import random_dense


class TestSparseKron:
    def test_matches_numpy(self, rng):
        for _ in range(20):
            n1, m1, n2, m2 = rng.integers(1, 6, 4)
            A = random_dense(rng, int(n1), int(m1))
            B = random_dense(rng, int(n2), int(m2))
            np.testing.assert_array_equal(
                kron(from_dense(A), from_dense(B)).to_dense(), np.kron(A, B)
            )

    def test_empty_operand(self, rng):
        A = from_dense(random_dense(rng, 3, 3))
        out = kron(A, zeros((2, 2)))
        assert out.shape == (6, 6)
        assert out.nnz == 0

    def test_nnz_multiplies(self, rng):
        A = from_dense(random_dense(rng, 4, 4))
        B = from_dense(random_dense(rng, 3, 3))
        assert kron(A, B).nnz == A.nnz * B.nnz

    def test_result_is_canonical(self, rng):
        A = from_dense(random_dense(rng, 4, 4))
        B = from_dense(random_dense(rng, 3, 3))
        out = kron(A, B)
        keys = out.rows * out.shape[1] + out.cols
        assert (np.diff(keys) > 0).all()

    def test_boolean_semiring(self):
        A = np.array([[True, False], [True, True]])
        B = np.array([[True]])
        out = kron(from_dense(A), from_dense(B), BOOL_OR_AND)
        np.testing.assert_array_equal(out.to_dense(), A)

    def test_min_plus_kron_adds(self):
        A = from_dense(np.array([[2.0]]), semiring=MIN_PLUS)
        B = from_dense(np.array([[3.0, 5.0]]), semiring=MIN_PLUS)
        out = kron(A, B, MIN_PLUS)
        np.testing.assert_array_equal(out.vals, [5.0, 7.0])

    def test_associativity(self, rng):
        A, B, C = (from_dense(random_dense(rng, 3, 3)) for _ in range(3))
        assert kron(kron(A, B), C).equal(kron(A, kron(B, C)))

    def test_kron_chain_fold(self, rng):
        mats = [from_dense(random_dense(rng, 2, 2)) for _ in range(4)]
        expected = mats[0].to_dense()
        for m in mats[1:]:
            expected = np.kron(expected, m.to_dense())
        np.testing.assert_array_equal(kron_chain(mats).to_dense(), expected)

    def test_kron_chain_single(self, rng):
        A = from_dense(random_dense(rng, 3, 3))
        assert kron_chain([A]).equal(A)

    def test_kron_chain_empty_rejected(self):
        with pytest.raises(ShapeError):
            kron_chain([])

    def test_mixed_product_identity(self, rng):
        A, B, C, D = (from_dense(random_dense(rng, 3, 3)) for _ in range(4))
        lhs = kron(A, B).matmul(kron(C, D))
        rhs = kron(A.matmul(C), B.matmul(D))
        assert lhs.equal(rhs)


class TestMixedRadix:
    def test_roundtrip(self):
        mr = MixedRadix([4, 3, 5])
        for flat in range(60):
            assert mr.encode(mr.decode(flat)) == flat

    def test_total(self):
        assert MixedRadix([4, 3, 5]).total == 60

    def test_most_significant_first(self):
        mr = MixedRadix([2, 10])
        assert mr.encode([1, 3]) == 13

    def test_huge_bases_exact(self):
        bases = [10**9 + 7] * 5
        mr = MixedRadix(bases)
        digits = tuple(b - 1 for b in bases)
        assert mr.decode(mr.encode(digits)) == digits
        assert mr.total == (10**9 + 7) ** 5

    def test_encode_range_check(self):
        with pytest.raises(IndexError):
            MixedRadix([3]).encode([3])

    def test_decode_range_check(self):
        with pytest.raises(IndexError):
            MixedRadix([3]).decode(3)

    def test_digit_count_check(self):
        with pytest.raises(ShapeError):
            MixedRadix([3, 3]).encode([1])

    def test_rejects_empty_and_bad_bases(self):
        with pytest.raises(ShapeError):
            MixedRadix([])
        with pytest.raises(ShapeError):
            MixedRadix([0, 2])


class TestKroneckerChain:
    def make(self):
        return KroneckerChain([star_adjacency(5), star_adjacency(3), star_adjacency(2)])

    def test_exact_metadata(self):
        ch = self.make()
        assert ch.num_vertices == 6 * 4 * 3
        assert ch.nnz == 10 * 6 * 4

    def test_materialize_matches_fold(self):
        ch = self.make()
        expected = kron_chain([star_adjacency(5), star_adjacency(3), star_adjacency(2)])
        assert ch.materialize().equal(expected)

    def test_entry_matches_materialized(self):
        ch = self.make()
        dense = ch.materialize().to_dense()
        n = ch.num_vertices
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j = rng.integers(0, n, 2)
            assert ch.entry(int(i), int(j)) == dense[i, j]

    def test_degree_matches_materialized(self):
        ch = self.make()
        g = Graph(ch.materialize())
        dv = g.degree_vector()
        for i in range(ch.num_vertices):
            assert ch.degree_of(i) == dv[i]

    def test_row_matches_materialized(self):
        ch = self.make()
        dense = ch.materialize().to_dense()
        for i in (0, 1, 17, ch.num_vertices - 1):
            cols, vals = ch.row(i)
            row = np.zeros(ch.num_vertices, dtype=np.int64)
            row[[int(c) for c in cols]] = [int(v) for v in vals]
            np.testing.assert_array_equal(row, dense[i])

    def test_split_concat_roundtrip(self):
        ch = self.make()
        b, c = ch.split(1)
        assert (b * c).materialize().equal(ch.materialize())

    def test_split_bounds(self):
        ch = self.make()
        with pytest.raises(ShapeError):
            ch.split(0)
        with pytest.raises(ShapeError):
            ch.split(3)

    def test_memory_guard(self):
        huge = KroneckerChain([star_adjacency(1000)] * 4)
        with pytest.raises(MemoryError):
            huge.materialize()

    def test_requires_square_factors(self):
        with pytest.raises(ShapeError):
            KroneckerChain([zeros((2, 3))])

    def test_requires_factors(self):
        with pytest.raises(ShapeError):
            KroneckerChain([])

    def test_lazy_scale_beyond_memory(self):
        # A 10^18-nnz chain is described without issue.
        ch = KroneckerChain([star_adjacency(10**3)] * 6)
        assert ch.nnz == (2 * 10**3) ** 6
        assert ch.degree_of(0) == (10**3) ** 6  # all-centers vertex


class TestComponents:
    def test_two_star_product_splits_in_two(self):
        # Weichsel: product of two connected bipartite graphs has exactly
        # two components (the paper's Fig. 1).
        c = kron(star_adjacency(5), star_adjacency(3))
        labels = connected_components(c)
        assert len(np.unique(labels)) == 2

    def test_loop_breaks_bipartiteness_and_connects(self):
        c = kron(star_adjacency(5, "center"), star_adjacency(3, "center"))
        labels = connected_components(c)
        assert len(np.unique(labels)) == 1

    def test_isolated_vertices_are_own_components(self):
        m = from_edges(4, [(0, 1)])
        labels = connected_components(m)
        assert len(np.unique(labels)) == 3

    def test_permutation_blocks_components(self):
        c = kron(star_adjacency(3), star_adjacency(2))
        perm = component_permutation(c)
        labels = connected_components(c)[perm]
        # After permutation, labels are sorted (grouped into blocks).
        assert (np.diff(labels) >= 0).all()

    def test_permuted_graph_is_isomorphic(self):
        c = kron(star_adjacency(3), star_adjacency(2))
        p = c.permuted(component_permutation(c))
        assert p.nnz == c.nnz
        assert sorted(p.row_nnz()) == sorted(c.row_nnz())

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            connected_components(zeros((2, 3)))
