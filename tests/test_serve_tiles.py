"""Byte-identity of served tile streams against local engine runs.

The serving layer's core guarantee: a rank's tiles fetched over HTTP —
reassembled from chunked repro.net frames — are byte-for-byte the
arrays a local :func:`repro.engine.execute` run hands its sink, for
every generator model and either scheduler; and the served design
record equals the locally computed ``analytic_properties`` record
field-for-field under ``diff_properties``.
"""

import asyncio

import numpy as np
import pytest

from repro.catalog import DesignProperties, analytic_properties, diff_properties
from repro.design import PowerLawDesign
from repro.engine import (
    AssemblySink,
    RunConfig,
    StaticScheduler,
    WorkQueueScheduler,
    execute,
    iter_task_tiles,
    plan_from_design,
    plan_from_model,
)
from repro.models import resolve_model
from repro.serve import AsyncServeClient, ServeClient, ServerConfig, start_in_thread

STAR_SIZES = [3, 4, 5]
SELF_LOOP = "center"
SEED = 7
RANKS = 3


def _spec(model_name):
    return {
        "star_sizes": STAR_SIZES,
        "self_loop": SELF_LOOP,
        "model": model_name,
        "seed": SEED,
    }


def _local_plan(model_name, budget=None):
    design = PowerLawDesign(STAR_SIZES, SELF_LOOP)
    model = resolve_model(model_name, design=design, seed=SEED)
    kwargs = {} if budget is None else {"memory_budget_entries": budget}
    if model is None:
        return design, plan_from_design(design, RANKS, **kwargs)
    return model, plan_from_model(model, RANKS, **kwargs)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = start_in_thread(
        ServerConfig(
            cache_dir=str(tmp_path_factory.mktemp("serve-cache")),
            ranks=RANKS,
        )
    )
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(server):
    with ServeClient(server.base_url) as c:
        yield c


@pytest.mark.parametrize("model_name", ["kron", "skg", "noisy-skg"])
@pytest.mark.parametrize(
    "scheduler", [StaticScheduler, WorkQueueScheduler], ids=["static", "queue"]
)
class TestTileByteIdentity:
    def test_served_tiles_match_local_execute(
        self, client, model_name, scheduler
    ):
        digest = client.post_design(_spec(model_name))["digest"]
        _, plan = _local_plan(model_name)
        result = execute(
            plan, AssemblySink(), config=RunConfig(scheduler=scheduler())
        )
        blocks = result.sink_result.blocks
        for rank in range(RANKS):
            served = client.fetch_tiles(digest, rank, ranks=RANKS)
            rows, cols, vals = blocks[rank]
            assert served.rows.tobytes() == rows.tobytes()
            assert served.cols.tobytes() == cols.tobytes()
            assert served.vals.tobytes() == vals.tobytes()
            assert served.rows.dtype == rows.dtype
            assert served.cols.dtype == cols.dtype
            assert served.vals.dtype == vals.dtype
            assert served.open_doc["digest"] == digest
            assert served.commit_doc["nnz"] == len(rows)


@pytest.mark.parametrize("model_name", ["kron", "skg", "noisy-skg"])
class TestServedRecord:
    def test_record_matches_analytic_field_for_field(self, client, model_name):
        reply = client.post_design(_spec(model_name))
        subject, _ = _local_plan(model_name)
        local = analytic_properties(subject)
        served = DesignProperties.from_doc(reply["record"])
        diff = diff_properties(local, served)
        assert diff.same_key
        assert diff.matches, diff.to_text()
        assert reply["digest"] == local.key_digest


class TestStreamWindows:
    def test_range_fetches_concatenate_to_the_full_stream(self, client):
        digest = client.post_design(_spec("kron"))["digest"]
        budget = 100  # forces several tiles per rank at this scale
        full = client.fetch_tiles(digest, 0, ranks=RANKS, budget=budget)
        assert len(full.tiles) > 1
        total = len(full.tiles)
        mid = total // 2
        head = client.fetch_tiles(
            digest, 0, ranks=RANKS, budget=budget, start=0, stop=mid
        )
        tail = client.fetch_tiles(
            digest, 0, ranks=RANKS, budget=budget, start=mid
        )
        assert [i for i, _ in head.tiles] == list(range(0, mid))
        assert [i for i, _ in tail.tiles] == list(range(mid, total))
        assert (
            np.concatenate([head.rows, tail.rows]).tobytes()
            == full.rows.tobytes()
        )
        assert (
            np.concatenate([head.vals, tail.vals]).tobytes()
            == full.vals.tobytes()
        )

    def test_budgeted_stream_equals_unbudgeted_bytes(self, client):
        digest = client.post_design(_spec("kron"))["digest"]
        tiled = client.fetch_tiles(digest, 1, ranks=RANKS, budget=100)
        whole = client.fetch_tiles(digest, 1, ranks=RANKS)
        assert len(tiled.tiles) > len(whole.tiles)
        assert tiled.rows.tobytes() == whole.rows.tobytes()
        assert tiled.cols.tobytes() == whole.cols.tobytes()
        assert tiled.vals.tobytes() == whole.vals.tobytes()


class TestIterTaskTiles:
    """The serving generation surface against the worker path, locally."""

    @pytest.mark.parametrize("model_name", ["kron", "skg", "noisy-skg"])
    def test_iter_task_tiles_concatenates_to_sink_blocks(self, model_name):
        _, plan = _local_plan(model_name, budget=100)
        result = execute(
            plan, AssemblySink(), config=RunConfig(scheduler=StaticScheduler())
        )
        blocks = result.sink_result.blocks
        for task in plan.tasks:
            parts = list(iter_task_tiles(plan, task))
            rows = np.concatenate([p[0] for p in parts])
            cols = np.concatenate([p[1] for p in parts])
            vals = np.concatenate([p[2] for p in parts])
            brows, bcols, bvals = blocks[task.rank]
            assert rows.tobytes() == brows.tobytes()
            assert cols.tobytes() == bcols.tobytes()
            assert vals.tobytes() == bvals.tobytes()


class TestAsyncClient:
    def test_async_client_round_trip_matches_sync(self, server, client):
        digest = client.post_design(_spec("noisy-skg"))["digest"]
        sync_tiles = client.fetch_tiles(digest, 0, ranks=RANKS)
        sync_record = client.get_design(digest)

        async def _go():
            ac = AsyncServeClient(server.base_url)
            health = await ac.health()
            reply = await ac.post_design(_spec("noisy-skg"))
            record = await ac.get_design(digest)
            revalidated = await ac.get_design(digest, etag=record.etag)
            tiles = await ac.fetch_tiles(digest, 0, ranks=RANKS)
            return health, reply, record, revalidated, tiles

        health, reply, record, revalidated, tiles = asyncio.run(_go())
        assert health["status"] == "ok"
        assert reply["digest"] == digest
        assert record.doc["record"] == sync_record.doc["record"]
        assert record.etag == sync_record.etag
        assert revalidated.status == 304
        assert tiles.rows.tobytes() == sync_tiles.rows.tobytes()
        assert tiles.cols.tobytes() == sync_tiles.cols.tobytes()
        assert tiles.vals.tobytes() == sync_tiles.vals.tobytes()
