"""Unit tests for CSRMatrix and CSCMatrix."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.semiring import BOOL_OR_AND
from repro.sparse import from_dense
from repro.sparse.csr import CSRMatrix
from tests.conftest import random_dense


class TestCSR:
    def test_roundtrip_coo(self, rng):
        A = random_dense(rng, 7, 5)
        m = from_dense(A)
        assert m.to_csr().to_coo().equal(m)

    def test_row_access(self):
        A = np.array([[0, 2, 0], [1, 0, 3]])
        csr = from_dense(A).to_csr()
        cols, vals = csr.row(1)
        np.testing.assert_array_equal(cols, [0, 2])
        np.testing.assert_array_equal(vals, [1, 3])

    def test_row_out_of_range(self):
        csr = from_dense(np.eye(2, dtype=np.int64)).to_csr()
        with pytest.raises(IndexError):
            csr.row(2)

    def test_row_nnz(self):
        A = np.array([[0, 2, 0], [1, 0, 3]])
        np.testing.assert_array_equal(from_dense(A).to_csr().row_nnz(), [1, 2])

    def test_matmul_inner_dim_mismatch(self, rng):
        a = from_dense(random_dense(rng, 3, 4)).to_csr()
        b = from_dense(random_dense(rng, 3, 4)).to_csr()
        with pytest.raises(ShapeError):
            a.matmul(b)

    def test_matmul_chain_associative(self, rng):
        A = random_dense(rng, 4, 4)
        B = random_dense(rng, 4, 4)
        C = random_dense(rng, 4, 4)
        sa, sb, sc = (from_dense(x).to_csr() for x in (A, B, C))
        left = (sa @ sb) @ sc
        right = sa @ (sb @ sc)
        np.testing.assert_array_equal(left.to_dense(), right.to_dense())

    def test_boolean_semiring_matmul_is_reachability(self):
        A = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=bool)
        sa = from_dense(A).to_csr()
        two_hop = sa.matmul(sa, BOOL_OR_AND).to_dense()
        np.testing.assert_array_equal(two_hop, A @ A)

    def test_transpose_matches_dense(self, rng):
        A = random_dense(rng, 5, 8)
        np.testing.assert_array_equal(from_dense(A).to_csr().T.to_dense(), A.T)

    def test_ewise_ops_match_dense(self, rng):
        A = random_dense(rng, 5, 5)
        B = random_dense(rng, 5, 5)
        sa, sb = from_dense(A).to_csr(), from_dense(B).to_csr()
        np.testing.assert_array_equal(sa.ewise_add(sb).to_dense(), A + B)
        np.testing.assert_array_equal(sa.ewise_mult(sb).to_dense(), A * B)

    def test_sum(self, rng):
        A = random_dense(rng, 5, 5)
        assert from_dense(A).to_csr().sum() == A.sum()

    def test_validation_on_construction(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1]))


class TestCSC:
    def test_roundtrip_coo(self, rng):
        A = random_dense(rng, 6, 9)
        m = from_dense(A)
        assert m.to_csc().to_coo().equal(m)

    def test_col_access(self):
        A = np.array([[0, 2], [1, 0], [0, 3]])
        csc = from_dense(A).to_csc()
        rows, vals = csc.col(1)
        np.testing.assert_array_equal(rows, [0, 2])
        np.testing.assert_array_equal(vals, [2, 3])

    def test_col_out_of_range(self):
        csc = from_dense(np.eye(2, dtype=np.int64)).to_csc()
        with pytest.raises(IndexError):
            csc.col(5)

    def test_col_nnz(self):
        A = np.array([[0, 2], [1, 0], [0, 3]])
        np.testing.assert_array_equal(from_dense(A).to_csc().col_nnz(), [1, 2])

    def test_transpose(self, rng):
        A = random_dense(rng, 4, 7)
        np.testing.assert_array_equal(from_dense(A).to_csc().T.to_dense(), A.T)

    def test_matmul_matches_dense(self, rng):
        A = random_dense(rng, 4, 5)
        B = random_dense(rng, 5, 3)
        out = from_dense(A).to_csc().matmul(from_dense(B).to_csc())
        np.testing.assert_array_equal(out.to_dense(), A @ B)

    def test_column_slice_matches_numpy(self, rng):
        A = random_dense(rng, 6, 8)
        csc = from_dense(A).to_csc()
        np.testing.assert_array_equal(csc.column_slice(2, 6).to_dense(), A[:, 2:6])

    def test_column_slice_empty_range(self, rng):
        A = random_dense(rng, 3, 3)
        sliced = from_dense(A).to_csc().column_slice(1, 1)
        assert sliced.shape == (3, 0)
        assert sliced.nnz == 0

    def test_column_slice_bounds(self, rng):
        csc = from_dense(random_dense(rng, 3, 3)).to_csc()
        with pytest.raises(IndexError):
            csc.column_slice(2, 5)

    def test_sum(self, rng):
        A = random_dense(rng, 5, 5)
        assert from_dense(A).to_csc().sum() == A.sum()
