"""Unit tests for the low-level sparse kernels."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.semiring import BOOL_OR_AND, MIN_PLUS, PLUS_TIMES
from repro.sparse import kernels


class TestExpandRanges:
    def test_basic(self):
        out = kernels.expand_ranges(np.array([5, 0]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [5, 6, 7, 0, 1])

    def test_empty_counts(self):
        out = kernels.expand_ranges(np.array([1, 9]), np.array([0, 0]))
        assert out.size == 0

    def test_mixed_zero_counts(self):
        out = kernels.expand_ranges(np.array([2, 7, 4]), np.array([1, 0, 2]))
        np.testing.assert_array_equal(out, [2, 4, 5])

    def test_no_segments(self):
        out = kernels.expand_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            kernels.expand_ranges(np.array([0]), np.array([-1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            kernels.expand_ranges(np.array([0, 1]), np.array([1]))

    def test_matches_python_reference(self, rng):
        starts = rng.integers(0, 100, size=20)
        counts = rng.integers(0, 6, size=20)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)] or [np.empty(0)]
        )
        np.testing.assert_array_equal(kernels.expand_ranges(starts, counts), expected)


class TestCoalesce:
    def test_merges_duplicates(self):
        r = np.array([1, 0, 1])
        c = np.array([2, 0, 2])
        v = np.array([3, 1, 4])
        rr, cc, vv = kernels.coalesce(r, c, v)
        np.testing.assert_array_equal(rr, [0, 1])
        np.testing.assert_array_equal(cc, [0, 2])
        np.testing.assert_array_equal(vv, [1, 7])

    def test_drops_zeros(self):
        r = np.array([0, 0])
        c = np.array([1, 1])
        v = np.array([5, -5])
        rr, cc, vv = kernels.coalesce(r, c, v)
        assert rr.size == 0 and cc.size == 0 and vv.size == 0

    def test_keep_zero_when_disabled(self):
        r = np.array([0])
        c = np.array([0])
        v = np.array([0])
        rr, _, vv = kernels.coalesce(r, c, v, drop_zero=False)
        assert rr.size == 1 and vv[0] == 0

    def test_sorts_lexicographically(self):
        r = np.array([2, 0, 1])
        c = np.array([0, 5, 3])
        v = np.array([1, 2, 3])
        rr, cc, _ = kernels.coalesce(r, c, v)
        np.testing.assert_array_equal(rr, [0, 1, 2])
        np.testing.assert_array_equal(cc, [5, 3, 0])

    def test_empty_input(self):
        e = np.empty(0, dtype=np.int64)
        rr, cc, vv = kernels.coalesce(e, e, e)
        assert rr.size == 0

    def test_min_plus_semiring_combines_with_min(self):
        r = np.array([0, 0])
        c = np.array([0, 0])
        v = np.array([3.0, 1.0])
        _, _, vv = kernels.coalesce(r, c, v, MIN_PLUS)
        assert vv[0] == 1.0

    def test_boolean_semiring(self):
        r = np.array([0, 0, 1])
        c = np.array([0, 0, 1])
        v = np.array([True, True, False])
        rr, _, vv = kernels.coalesce(r, c, v, BOOL_OR_AND)
        # (1,1) False is the boolean zero and is dropped.
        assert list(rr) == [0]
        assert vv[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            kernels.coalesce(np.array([0]), np.array([0, 1]), np.array([1]))


class TestBuildIndptr:
    def test_basic(self):
        indptr = kernels.build_indptr(np.array([0, 0, 2]), 4)
        np.testing.assert_array_equal(indptr, [0, 2, 2, 3, 3])

    def test_empty(self):
        indptr = kernels.build_indptr(np.empty(0, dtype=np.int64), 3)
        np.testing.assert_array_equal(indptr, [0, 0, 0, 0])


class TestValidateCompressed:
    def _ok(self):
        return (
            np.array([0, 1, 2]),
            np.array([0, 1]),
            np.array([1, 1]),
        )

    def test_accepts_valid(self):
        indptr, indices, data = self._ok()
        kernels.validate_compressed(indptr, indices, data, 2, 2)

    def test_bad_indptr_length(self):
        indptr, indices, data = self._ok()
        with pytest.raises(FormatError):
            kernels.validate_compressed(indptr, indices, data, 3, 2)

    def test_indptr_not_starting_at_zero(self):
        with pytest.raises(FormatError):
            kernels.validate_compressed(
                np.array([1, 1, 2]), np.array([0, 1]), np.array([1, 1]), 2, 2
            )

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError):
            kernels.validate_compressed(
                np.array([0, 2, 1]), np.array([0]), np.array([1]), 2, 2
            )

    def test_nnz_mismatch(self):
        with pytest.raises(FormatError):
            kernels.validate_compressed(
                np.array([0, 1, 3]), np.array([0, 1]), np.array([1, 1]), 2, 2
            )

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            kernels.validate_compressed(
                np.array([0, 1, 2]), np.array([0, 9]), np.array([1, 1]), 2, 2
            )


class TestCsrMatmulKernel:
    def test_empty_operand_gives_empty(self):
        e = np.empty(0, dtype=np.int64)
        r, c, v = kernels.csr_matmul(
            np.array([0, 0]), e, e, np.array([0, 0]), e, e, 1
        )
        assert r.size == 0

    def test_against_dense_plus_times(self, rng):
        from tests.conftest import random_dense
        from repro.sparse import from_dense

        for _ in range(20):
            n, k, m = rng.integers(1, 10, 3)
            A = random_dense(rng, int(n), int(k))
            B = random_dense(rng, int(k), int(m))
            sa, sb = from_dense(A).to_csr(), from_dense(B).to_csr()
            r, c, v = kernels.csr_matmul(
                sa.indptr, sa.indices, sa.data, sb.indptr, sb.indices, sb.data, int(n)
            )
            dense = np.zeros((n, m), dtype=np.int64)
            dense[r, c] = v
            np.testing.assert_array_equal(dense, A @ B)

    def test_min_plus_shortest_path_step(self):
        # Distances over one relaxation step: D' = D min.+ D
        from repro.sparse import from_dense

        inf = np.inf
        D = np.array([[0.0, 1.0, inf], [inf, 0.0, 2.0], [inf, inf, 0.0]])
        # Represent inf as "absent" (the min-plus zero).
        sd = from_dense(D, semiring=MIN_PLUS)
        r, c, v = kernels.csr_matmul(
            *(lambda s: (s.indptr, s.indices, s.data))(sd.to_csr()),
            *(lambda s: (s.indptr, s.indices, s.data))(sd.to_csr()),
            3,
            MIN_PLUS,
        )
        out = np.full((3, 3), inf)
        out[r, c] = v
        expected = np.full((3, 3), inf)
        for i in range(3):
            for j in range(3):
                expected[i, j] = min(D[i, k] + D[k, j] for k in range(3))
        np.testing.assert_array_equal(out, expected)


class TestCsrTranspose:
    def test_against_dense(self, rng):
        from tests.conftest import random_dense
        from repro.sparse import from_dense

        for _ in range(10):
            n, m = rng.integers(1, 12, 2)
            A = random_dense(rng, int(n), int(m))
            csr = from_dense(A).to_csr()
            ti, tc, td = kernels.csr_transpose(
                csr.indptr, csr.indices, csr.data, int(n), int(m)
            )
            dense = np.zeros((m, n), dtype=np.int64)
            rows = np.repeat(np.arange(m), np.diff(ti))
            dense[rows, tc] = td
            np.testing.assert_array_equal(dense, A.T)
