"""Unit tests for the validation subsystem."""

import pytest

from repro.design import DegreeDistribution, PowerLawDesign
from repro.errors import ValidationError
from repro.graphs import Graph, complete_graph, cycle_graph, star_adjacency
from repro.sparse import from_edges
from repro.validate import (
    audit_graph_structure,
    check_degree_distribution,
    check_triangles,
    count_triangles_matrix,
    count_triangles_node_iterator,
    validate_design,
)


class TestDegreeCheck:
    def test_exact_match(self):
        g = Graph(star_adjacency(4))
        check = check_degree_distribution(g, DegreeDistribution({1: 4, 4: 1}))
        assert check.exact_match
        assert bool(check)
        assert "EXACT" in check.to_text()

    def test_mismatch_reported_per_degree(self):
        g = Graph(star_adjacency(4))
        check = check_degree_distribution(g, DegreeDistribution({1: 4, 5: 1}))
        assert not check
        assert check.mismatches[4] == (1, 0)
        assert check.mismatches[5] == (0, 1)
        assert "mismatching" in check.to_text()

    def test_accepts_plain_mappings(self):
        check = check_degree_distribution({1: 2}, {1: 2})
        assert check.exact_match

    def test_accepts_distribution_as_measured(self):
        check = check_degree_distribution(
            DegreeDistribution({2: 2}), DegreeDistribution({2: 2})
        )
        assert check.exact_match


class TestTriangleCounters:
    @pytest.mark.parametrize(
        "matrix,expected",
        [
            (complete_graph(4), 4),
            (complete_graph(5), 10),
            (cycle_graph(3), 1),
            (cycle_graph(5), 0),
            (star_adjacency(6), 0),
        ],
        ids=["K4", "K5", "C3", "C5", "star"],
    )
    def test_both_algorithms_agree(self, matrix, expected):
        g = Graph(matrix)
        assert count_triangles_matrix(g) == expected
        assert count_triangles_node_iterator(g) == expected

    def test_node_iterator_rejects_loops(self):
        g = Graph(from_edges(3, [(0, 0), (0, 1)]))
        with pytest.raises(ValidationError):
            count_triangles_node_iterator(g)

    def test_node_iterator_rejects_asymmetric(self):
        from repro.sparse import from_triples

        g = Graph(from_triples((3, 3), [0], [1], [1]))
        with pytest.raises(ValidationError):
            count_triangles_node_iterator(g)

    def test_check_triangles_pass(self):
        check = check_triangles(Graph(complete_graph(4)), 4)
        assert check.exact_match
        assert "EXACT" in check.to_text()

    def test_check_triangles_fail(self):
        check = check_triangles(Graph(complete_graph(4)), 5)
        assert not check

    def test_cross_check_skipped_above_limit(self):
        check = check_triangles(Graph(complete_graph(4)), 4, cross_check_limit=2)
        assert check.node_iterator_count is None
        assert "skipped" in check.to_text()


class TestStructureAudit:
    def test_clean_graph(self):
        audit = audit_graph_structure(PowerLawDesign([3, 4]).realize())
        assert audit.clean
        assert "CLEAN" in audit.to_text()

    def test_dirty_graph_flags(self):
        g = Graph(from_edges(5, [(0, 0), (0, 1)]))
        audit = audit_graph_structure(g)
        assert not audit.clean
        assert audit.num_self_loops == 1
        assert audit.num_empty_vertices == 3
        assert "ISSUES" in audit.to_text()


class TestValidateDesign:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    @pytest.mark.parametrize("sizes", [[3], [4, 3], [2, 3, 4]])
    def test_designs_validate(self, sizes, loop):
        report = validate_design(PowerLawDesign(sizes, loop))
        assert report.passed, report.to_text()
        assert "PASSED" in report.to_text()

    def test_wrong_graph_fails(self):
        report = validate_design(
            PowerLawDesign([3, 4]), graph=PowerLawDesign([4, 5]).realize()
        )
        assert not report.passed
        assert "FAILED" in report.to_text()

    def test_validates_supplied_parallel_graph(self):
        from repro.parallel.generator import generate_design_parallel

        design = PowerLawDesign([3, 4, 2], "center")
        g = generate_design_parallel(design, 6)
        assert validate_design(design, graph=g).passed
