"""End-to-end integration tests spanning every subsystem.

Each test is a full user journey: design -> (parallel) generation ->
on-disk artifacts -> independent re-measurement -> validation, with the
exact predictions as the single source of truth throughout.
"""

import json

import numpy as np
import pytest

from repro import (
    ParallelKroneckerGenerator,
    PowerLawDesign,
    VirtualCluster,
    design_for_scale,
    generate_design_parallel,
    validate_design,
)
from repro.analysis import (
    count_by_enumeration,
    fit_power_law,
    k_truss,
)
from repro.design import design_spectrum
from repro.io import (
    load_design,
    load_matrix,
    read_mtx,
    save_design,
    save_matrix,
    write_mtx,
)
from repro.kron import spectral_radius_estimate
from repro.parallel import generate_to_disk, read_streamed_degree_distribution
from repro.validate import audit_partition


class TestFullPipelineInMemory:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_design_generate_validate(self, loop):
        design = PowerLawDesign([3, 4, 5], loop)
        graph = generate_design_parallel(design, n_ranks=7)
        report = validate_design(design, graph=graph)
        assert report.passed, report.to_text()
        # Independent witnesses beyond the validator:
        assert count_by_enumeration(graph) == design.num_triangles
        assert graph.num_wedges() == design.num_wedges

    def test_search_then_full_loop(self):
        design = design_for_scale(30_000, rel_tol=0.5)
        report = validate_design(design)
        assert report.passed

    def test_spectral_cross_checks(self):
        design = PowerLawDesign([3, 4, 2], "center")
        spectrum = design_spectrum(design)
        # Exact spectrum vs matrix-free power iteration on the raw chain.
        estimated = spectral_radius_estimate(design.to_chain())
        assert estimated == pytest.approx(spectrum.spectral_radius, rel=1e-6)
        # Spectrum moments vs exact counts.
        assert spectrum.moment(2) == pytest.approx(design.raw_nnz)


class TestFullPipelineOnDisk:
    def test_stream_write_read_validate(self, tmp_path):
        design = PowerLawDesign([3, 4, 5], "center")
        summary = generate_to_disk(design, 6, tmp_path / "ranks")
        measured = read_streamed_degree_distribution(
            summary.files, design.num_vertices
        )
        assert measured == design.degree_distribution

    def test_design_json_plus_matrix_npz(self, tmp_path):
        design = PowerLawDesign([3, 4], "leaf")
        save_design(tmp_path / "design.json", design)
        graph = design.realize()
        save_matrix(tmp_path / "graph.npz", graph.adjacency)
        # A fresh consumer loads both and re-validates.
        loaded_design = load_design(tmp_path / "design.json")
        loaded_matrix = load_matrix(tmp_path / "graph.npz")
        from repro.graphs import Graph

        report = validate_design(loaded_design, graph=Graph(loaded_matrix))
        assert report.passed

    def test_mtx_interchange(self, tmp_path):
        design = PowerLawDesign([3, 4, 2])
        graph = design.realize()
        write_mtx(tmp_path / "g.mtx", graph.adjacency, symmetric=True)
        back = read_mtx(tmp_path / "g.mtx")
        assert back.equal(graph.adjacency)

    def test_report_json_is_loadable(self, tmp_path):
        doc = PowerLawDesign([3, 4, 5], "center").report().to_dict()
        path = tmp_path / "report.json"
        path.write_text(json.dumps(doc))
        parsed = json.loads(path.read_text())
        assert parsed["num_triangles"] == PowerLawDesign([3, 4, 5], "center").num_triangles


class TestWorkloadConsumers:
    """The generator exists to feed graph-analytic workloads; run them."""

    def test_truss_on_designed_graph(self):
        design = PowerLawDesign([3, 4, 5], "center")
        graph = design.realize()
        t3 = k_truss(graph, 3)
        # Every surviving edge participates in a triangle of the truss.
        from repro.analysis import edge_support

        if t3.num_edges:
            support = edge_support(t3.subgraph)
            assert (support.vals >= 1).all()

    def test_power_law_fit_on_generated_graph(self):
        design = PowerLawDesign([3, 4, 5, 9])
        graph = design.realize()
        fit = fit_power_law(graph.degree_distribution())
        assert fit.alpha == pytest.approx(1.0, abs=1e-9)

    def test_partition_audit_through_public_api(self):
        design = PowerLawDesign([3, 4, 5, 9])
        gen = ParallelKroneckerGenerator(design.to_chain(), VirtualCluster(12))
        blocks = gen.generate_blocks()
        audit = audit_partition(gen.plan, blocks, design.raw_nnz)
        assert audit.complete and audit.balanced

    def test_multibackend_agreement(self):
        from repro.parallel import MultiprocessingBackend, SerialBackend

        design = PowerLawDesign([3, 4, 5])
        chain = design.to_chain()
        serial = ParallelKroneckerGenerator(
            chain, VirtualCluster(4), backend=SerialBackend()
        ).assemble()
        multi = ParallelKroneckerGenerator(
            chain, VirtualCluster(4), backend=MultiprocessingBackend(processes=2)
        ).assemble()
        assert serial.equal(multi)
