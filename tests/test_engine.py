"""Tests for the plan→schedule→execute→sink engine and the tiled kernel.

Covers the ISSUE acceptance criteria directly: kron_tiles equivalence
with the whole-block kernel at any budget, guaranteed progress when the
budget is smaller than a single Bp row, empty-rank plans (Np > nnz(B)),
one-rank plans, the bounded-peak guarantee when the largest rank block
exceeds the budget, and byte-identity of tiny-budget streamed output
with the default-budget run.
"""

import numpy as np
import pytest

from repro.design import PowerLawDesign
from repro.engine import (
    AssemblySink,
    DegreeSink,
    GenerationPlan,
    RankTask,
    StaticScheduler,
    execute,
    plan_from_chain,
    plan_from_design,
)
from repro.errors import GenerationError, PartitionError
from repro.graphs import star_adjacency
from repro.kron import KroneckerChain, kron, kron_tiles, tile_row_ranges
from repro.parallel import VirtualCluster, streamed_degree_distribution
from repro.runtime import MetricsRegistry


def _triples(m):
    coo = m.as_coo() if hasattr(m, "as_coo") else m
    return np.array(coo.rows), np.array(coo.cols), np.array(coo.vals)


class TestTileRowRanges:
    def test_none_budget_is_single_range(self):
        assert list(tile_row_ranges(np.array([2, 3, 4]), None)) == [(0, 3)]

    def test_packs_consecutive_rows_under_budget(self):
        assert list(tile_row_ranges(np.array([2, 2, 2, 2]), 4)) == [(0, 2), (2, 4)]

    def test_oversized_row_still_progresses(self):
        # Row 0 alone exceeds the budget; it must still form its own
        # (over-budget) tile rather than loop forever.
        assert list(tile_row_ranges(np.array([5, 1, 1]), 3)) == [(0, 1), (1, 3)]

    def test_budget_below_one_rejected(self):
        with pytest.raises(GenerationError):
            list(tile_row_ranges(np.array([1, 1]), 0))


class TestKronTiles:
    B = star_adjacency(5)
    C = star_adjacency(4)

    @pytest.mark.parametrize("budget", [None, 1, 3, 6, 7, 8, 24, 1000])
    def test_concatenated_tiles_equal_whole_kernel(self, budget):
        reference = kron(self.B, self.C)
        tiles = list(kron_tiles(self.B, self.C, budget))
        rows = np.concatenate([t[0] for t in tiles])
        cols = np.concatenate([t[1] for t in tiles])
        vals = np.concatenate([t[2] for t in tiles])
        ref_rows, ref_cols, ref_vals = _triples(reference)
        np.testing.assert_array_equal(rows, ref_rows)
        np.testing.assert_array_equal(cols, ref_cols)
        np.testing.assert_array_equal(vals, ref_vals)

    def test_tile_sizes_respect_budget_when_rows_fit(self):
        # star(5) row 0 has 5 entries -> worst row costs 5 * nnz(C) = 40.
        budget = 48
        for rows, _, _ in kron_tiles(self.B, self.C, budget):
            assert len(rows) <= budget

    def test_empty_factor_yields_nothing(self):
        from repro.sparse import COOMatrix

        empty = COOMatrix((3, 3), [], [], [])
        assert list(kron_tiles(empty, self.C, 4)) == []


class TestScheduler:
    def _tasks(self, entries):
        return [
            RankTask(rank=i, assignment=None, estimated_entries=e)
            for i, e in enumerate(entries)
        ]

    def test_default_is_one_batch_in_rank_order(self):
        tasks = self._tasks([5, 5, 5])
        batches = StaticScheduler().schedule(list(reversed(tasks)))
        assert batches == [tuple(tasks)]

    def test_batch_size_partitions_evenly(self):
        tasks = self._tasks([1] * 5)
        batches = StaticScheduler(batch_size=2).schedule(tasks)
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_group_by_budget_packs_consecutively(self):
        tasks = self._tasks([30, 30, 50, 10])
        batches = StaticScheduler(group_by_budget=True).schedule(
            tasks, memory_budget_entries=60
        )
        assert [[t.rank for t in b] for b in batches] == [[0, 1], [2, 3]]

    def test_oversized_task_gets_its_own_batch(self):
        tasks = self._tasks([100, 10])
        batches = StaticScheduler(group_by_budget=True).schedule(
            tasks, memory_budget_entries=60
        )
        assert [[t.rank for t in b] for b in batches] == [[0], [1]]

    def test_group_by_budget_requires_budget(self):
        with pytest.raises(GenerationError):
            StaticScheduler(group_by_budget=True).schedule(self._tasks([1]))

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(GenerationError):
            StaticScheduler(batch_size=0)

    def test_knobs_mutually_exclusive(self):
        with pytest.raises(GenerationError):
            StaticScheduler(batch_size=2, group_by_budget=True)


class TestPartitionEdgeCases:
    CHAIN = KroneckerChain([star_adjacency(3), star_adjacency(4)])

    def test_more_ranks_than_b_triples_rejected_by_default(self):
        cluster = VirtualCluster(n_ranks=self.CHAIN.nnz + 10)
        with pytest.raises(PartitionError):
            plan_from_chain(self.CHAIN, cluster)

    def test_empty_ranks_allowed_and_assemble_exact(self):
        n_ranks = 10  # nnz(B) = 6 at the only feasible split, so 4+ ranks idle
        cluster = VirtualCluster(n_ranks=n_ranks)
        plan = plan_from_chain(self.CHAIN, cluster, allow_empty_ranks=True)
        assert plan.n_ranks == n_ranks
        assert any(t.estimated_entries == 0 for t in plan.tasks)
        result = execute(plan, AssemblySink())
        assert result.sink_result.matrix().equal(self.CHAIN.materialize())
        empty_ranks = [s.rank for s in result.stats if s.nnz == 0]
        assert empty_ranks  # the idle ranks ran and produced nothing

    def test_one_rank_plan(self):
        plan = plan_from_chain(self.CHAIN, VirtualCluster(n_ranks=1))
        result = execute(plan, AssemblySink())
        assert len(result.stats) == 1
        assert result.sink_result.matrix().equal(self.CHAIN.materialize())


class TestBoundedMemoryExecution:
    def test_peak_tile_bounded_when_block_exceeds_budget(self):
        # One rank, so the block is the whole 480-entry product; the
        # worst single B row costs 12 * nnz(C) = 120 entries.  A budget
        # between those forces tiling AND must be respected exactly.
        chain = KroneckerChain(
            [star_adjacency(3), star_adjacency(4), star_adjacency(5)]
        )
        budget = 150
        plan = plan_from_chain(chain, VirtualCluster(1, memory_entries=budget))
        assert plan.max_task_entries > budget
        metrics = MetricsRegistry()
        result = execute(plan, AssemblySink(), metrics=metrics)
        assert result.peak_tile_entries <= budget
        assert result.total_tiles > 1
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.tiles"] == result.total_tiles
        assert (
            snapshot["gauges"]["engine.peak_tile_entries"]
            == result.peak_tile_entries
        )
        assert result.sink_result.matrix().equal(chain.materialize())

    def test_sub_row_budget_still_completes(self):
        # A tile budget of 1 entry is below every Bp row's cost (the
        # split chooser would reject it, so the plan is built directly);
        # the progress guarantee gives one row per tile, peak = worst
        # row, output still exact.
        from repro.engine import plan_from_partition
        from repro.parallel.partition import partition_bc

        chain = KroneckerChain([star_adjacency(3), star_adjacency(4)])
        partition = partition_bc(chain, VirtualCluster(1))
        plan = plan_from_partition(
            partition,
            num_vertices=chain.num_vertices,
            memory_budget_entries=1,
        )
        result = execute(plan, AssemblySink())
        assert result.sink_result.matrix().equal(chain.materialize())
        assert result.total_tiles > 1  # every row became its own tile
        assert result.peak_tile_entries > 1  # oversized rows, documented

    def test_tiny_budget_stream_bytes_identical(self, tmp_path):
        from repro.parallel import generate_to_disk

        design = PowerLawDesign([3, 4, 5], "center")
        default_dir = tmp_path / "default"
        tiny_dir = tmp_path / "tiny"
        metrics = MetricsRegistry()
        generate_to_disk(design, 5, default_dir, scramble_seed=11)
        # 63 is the smallest budget at which both split halves fit for
        # this design's factor nnzs [7, 9, 11].
        summary = generate_to_disk(
            design,
            5,
            tiny_dir,
            memory_budget_entries=63,
            scramble_seed=11,
            metrics=metrics,
        )
        assert metrics.snapshot()["counters"]["engine.tiles"] > 5
        for path in sorted(default_dir.iterdir()):
            assert (tiny_dir / path.name).read_bytes() == path.read_bytes()
        assert summary.total_edges == design.num_edges


class TestDegreeSink:
    def test_streamed_distribution_matches_prediction(self):
        design = PowerLawDesign([3, 4, 5], "center")
        measured = streamed_degree_distribution(
            design, 3, memory_budget_entries=100
        )
        assert measured == design.degree_distribution

    def test_direct_sink_use_matches_driver(self):
        design = PowerLawDesign([3, 4, 5], "center")
        plan = plan_from_design(design, 3, memory_budget_entries=100)
        result = execute(plan, DegreeSink())
        assert result.sink_result.distribution() == design.degree_distribution


class TestPlanValidation:
    def test_plan_records_budget_and_estimates(self):
        design = PowerLawDesign([3, 4], "none")
        plan = plan_from_design(design, 2, memory_budget_entries=1000)
        assert isinstance(plan, GenerationPlan)
        assert plan.memory_budget_entries == 1000
        assert sum(t.estimated_entries for t in plan.tasks) == design.raw_nnz
