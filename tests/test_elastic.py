"""Elastic execution: pools that grow, shrink, and die mid-run.

Covers the four tentpole surfaces of :mod:`repro.runtime.elastic`:

* membership events — ``add_workers`` / ``remove_workers`` (graceful
  drain) / ``revoke_workers`` (loud and silent spot-style kills);
* the lease/heartbeat layer — a vanished worker is detected via lease
  expiry and its task reassigned with the original identity, preserving
  injector schedules and retry budgets;
* the :class:`WorkerRevoker` chaos adversary with deterministic
  event-count schedules (hypothesis generates the churn);
* the autoscaler hook (``scale_policy``) through ``engine.execute``.

The hard invariant asserted throughout: any churn schedule produces
byte-identical shard/manifest output to an uninterrupted static run.
"""

import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import PowerLawDesign
from repro.engine import (
    RunConfig,
    ShardSink,
    StaticScheduler,
    WorkQueueScheduler,
    execute,
    plan_from_design,
)
from repro.engine.execute import _RankMappedInjector
from repro.errors import (
    FatalRankError,
    GenerationError,
    RetryExhaustedError,
    WorkerLostError,
)
from repro.parallel.backends import (
    MultiprocessingBackend,
    SerialBackend,
    ThreadBackend,
    backend_worker_count,
    get_backend,
    make_backend,
)
from repro.runtime import (
    ChurnAction,
    ElasticWorkerPool,
    FailureInjector,
    MetricsRegistry,
    PoolStats,
    RankExecutor,
    WorkerRevoker,
)
from repro.typing import ElasticBackend, StreamingBackend

DESIGN = PowerLawDesign([3, 4, 5], "center")


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, start=0.0, step=0.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def advance(self, dt):
        self.now += dt


def make_pool(**kw):
    kw.setdefault("inner", ThreadBackend(max_workers=8))
    kw.setdefault("workers", 2)
    kw.setdefault("lease_timeout_s", 0.05)
    return ElasticWorkerPool(**kw)


# -- membership ---------------------------------------------------------------
class TestMembership:
    def test_satisfies_protocols(self):
        pool = make_pool()
        try:
            assert isinstance(pool, StreamingBackend)
            assert isinstance(pool, ElasticBackend)
            assert not isinstance(SerialBackend(), ElasticBackend)
        finally:
            pool.shutdown()

    def test_add_and_count(self):
        pool = make_pool(workers=2)
        try:
            assert pool.worker_count() == 2
            ids = pool.add_workers(3)
            assert len(ids) == 3
            assert pool.worker_count() == 5
            assert backend_worker_count(pool) == 5
        finally:
            pool.shutdown()

    def test_remove_idle_retires_immediately(self):
        pool = make_pool(workers=3)
        try:
            pool.remove_workers(2)
            assert pool.worker_count() == 1
            assert pool.stats().draining == 0
        finally:
            pool.shutdown()

    def test_remove_busy_drains_then_retires(self):
        release = threading.Event()
        pool = make_pool(workers=1)
        try:
            handle = pool.submit(lambda _: release.wait(5.0), None)
            # The only member is busy: removal must drain, not kill.
            pool.remove_workers(1)
            stats = pool.stats()
            assert stats.workers == 0 and stats.draining == 1
            release.set()
            assert handle.result() is True  # the in-flight task finished
            deadline = time.monotonic() + 5.0
            while pool.stats().draining and time.monotonic() < deadline:
                time.sleep(0.005)
            stats = pool.stats()
            assert stats.draining == 0 and stats.workers == 0
        finally:
            release.set()
            pool.shutdown()

    def test_remove_more_than_eligible_rejected(self):
        pool = make_pool(workers=2)
        try:
            with pytest.raises(GenerationError, match="only 2 eligible"):
                pool.remove_workers(3)
        finally:
            pool.shutdown()

    def test_shutdown_fails_queued_and_closes(self):
        pool = make_pool(workers=0)
        handle = pool.submit(lambda x: x, 1)
        pool.shutdown()
        with pytest.raises(GenerationError, match="shut down"):
            handle.result()
        with pytest.raises(GenerationError, match="shut down"):
            pool.submit(lambda x: x, 2)

    def test_default_inner_is_thread_backend(self):
        pool = ElasticWorkerPool(workers=2)
        try:
            assert pool._inner.name == "thread"
            assert pool.zero_copy_tiles is False
        finally:
            pool.shutdown()

    def test_zero_copy_mirrors_inner(self):
        inner = MultiprocessingBackend(processes=1)
        pool = ElasticWorkerPool(inner, workers=1)
        try:
            assert pool.zero_copy_tiles is True
        finally:
            pool.shutdown()

    def test_registered_backend_name(self):
        pool = get_backend("elastic")
        try:
            assert pool.name == "elastic"
            assert pool.worker_count() >= 1
        finally:
            pool.shutdown()

    def test_make_backend_sizes_pool(self):
        pool = make_backend("elastic", 3)
        try:
            assert pool.worker_count() == 3
        finally:
            pool.shutdown()
        assert make_backend("thread", 2).max_workers == 2
        with pytest.raises(GenerationError, match="single-worker"):
            make_backend("serial", 4)


# -- revocation + leases ------------------------------------------------------
class TestRevocationAndLeases:
    def test_loud_revoke_resolves_worker_lost(self):
        release = threading.Event()
        pool = make_pool(workers=1)
        try:
            handle = pool.submit(lambda _: release.wait(5.0), None)
            pool.revoke_workers(1)
            with pytest.raises(WorkerLostError, match="revoked"):
                handle.result()
            assert pool.worker_count() == 0
        finally:
            release.set()
            pool.shutdown()

    def test_silent_revoke_detected_by_lease_expiry(self):
        clock = FakeClock()
        release = threading.Event()
        pool = make_pool(workers=1, lease_timeout_s=10.0, clock=clock)
        try:
            handle = pool.submit(lambda _: release.wait(5.0), None)
            pool.revoke_workers(1, silent=True)
            # Before the deadline the lease is honoured: no detection.
            assert pool.check_leases() == ()
            assert not handle.done()
            clock.advance(10.0)
            expired = pool.check_leases()
            assert len(expired) == 1
            with pytest.raises(WorkerLostError, match="missed heartbeats"):
                handle.result()
        finally:
            release.set()
            pool.shutdown()

    def test_alive_members_renew_leases(self):
        clock = FakeClock()
        release = threading.Event()
        pool = make_pool(workers=1, lease_timeout_s=10.0, clock=clock)
        try:
            handle = pool.submit(lambda _: release.wait(5.0), None)
            clock.advance(9.0)
            assert pool.check_leases() == ()  # renews: member is alive
            clock.advance(9.0)
            # Without renewal this would be past the original deadline.
            assert pool.check_leases() == ()
            assert not handle.done()
            release.set()
            assert handle.result() is True
        finally:
            release.set()
            pool.shutdown()

    def test_ghost_result_discarded_after_loud_revoke(self):
        release = threading.Event()
        pool = make_pool(workers=1)
        try:
            handle = pool.submit(lambda _: release.wait(5.0) and 42, None)
            pool.revoke_workers(1)
            with pytest.raises(WorkerLostError):
                handle.result()
            # Let the ghost finish; its result must not resurrect the
            # already-failed handle.
            release.set()
            time.sleep(0.05)
            with pytest.raises(WorkerLostError):
                handle.result()
        finally:
            release.set()
            pool.shutdown()

    def test_revoke_prefers_busy_members(self):
        release = threading.Event()
        pool = make_pool(workers=2)
        try:
            handle = pool.submit(lambda _: release.wait(5.0), None)
            revoked = pool.revoke_workers(1)
            # The busy member (id 0, lowest) is the one killed.
            assert revoked == (0,)
            with pytest.raises(WorkerLostError):
                handle.result()
            assert pool.worker_count() == 1
        finally:
            release.set()
            pool.shutdown()

    def test_stall_fails_queued_tasks_fatally(self):
        clock = FakeClock(step=2.0)  # every look at the clock jumps 2s
        pool = ElasticWorkerPool(
            ThreadBackend(max_workers=2),
            workers=0,
            stall_timeout_s=1.0,
            clock=clock,
        )
        try:
            handle = pool.submit(lambda x: x, 1)
            with pytest.raises(FatalRankError, match="stalled"):
                next(iter(pool.as_completed([handle])))
                handle.result()
        finally:
            pool.shutdown()

    def test_map_survives_churn(self):
        pool = make_pool(workers=2)
        rev = WorkerRevoker(
            [
                ChurnAction(trigger="dispatch", at=3, op="revoke"),
                ChurnAction(trigger="complete", at=2, op="add", workers=1),
            ]
        ).attach(pool)
        try:
            assert pool.map(lambda x: x * x, range(12)) == [
                x * x for x in range(12)
            ]
            assert [a.op for a, _ in rev.fired] == ["revoke", "add"]
        finally:
            pool.shutdown()

    def test_metrics_bound_to_pool(self):
        metrics = MetricsRegistry()
        pool = make_pool(workers=2, metrics=metrics)
        try:
            snap = metrics.snapshot()
            assert snap["gauges"]["engine.workers_active"] == 2
            assert snap["counters"]["engine.revocations"] == 0
            assert snap["counters"]["engine.lease_expiries"] == 0
            pool.add_workers(1)
            pool.revoke_workers(2)
            snap = metrics.snapshot()
            assert snap["gauges"]["engine.workers_active"] == 1
            assert snap["counters"]["engine.revocations"] == 2
        finally:
            pool.shutdown()


# -- autoscaler ---------------------------------------------------------------
class TestScalePolicy:
    def test_policy_grows_to_target(self):
        pool = make_pool(workers=1)
        try:
            pool.set_scale_policy(lambda stats: 4)
            pool.submit(lambda x: x, 1).result()
            assert pool.worker_count() == 4
        finally:
            pool.shutdown()

    def test_policy_shrinks_to_target(self):
        pool = make_pool(workers=5)
        try:
            pool.set_scale_policy(lambda stats: 2)
            pool.submit(lambda x: x, 1).result()
            deadline = time.monotonic() + 5.0
            while pool.stats().draining and time.monotonic() < deadline:
                time.sleep(0.005)
            assert pool.worker_count() == 2
        finally:
            pool.shutdown()

    def test_policy_none_means_no_change(self):
        pool = make_pool(workers=3)
        try:
            pool.set_scale_policy(lambda stats: None)
            pool.submit(lambda x: x, 1).result()
            assert pool.worker_count() == 3
        finally:
            pool.shutdown()

    def test_policy_rescues_empty_pool(self):
        pool = ElasticWorkerPool(
            ThreadBackend(max_workers=4),
            workers=0,
            scale_policy=lambda stats: min(2, stats.queued + stats.in_flight),
        )
        try:
            assert pool.map(lambda x: -x, range(6)) == [-x for x in range(6)]
            # Once the queue drains the same policy scales back to zero.
            assert pool.stats().completed == 6
        finally:
            pool.shutdown()

    def test_stats_utilization(self):
        stats = PoolStats(
            workers=4,
            draining=0,
            queued=3,
            in_flight=2,
            submitted=5,
            completed=0,
            revoked=0,
        )
        assert stats.utilization == pytest.approx(0.5)
        empty = PoolStats(0, 0, 1, 0, 1, 0, 0)
        assert empty.utilization == 0.0

    def test_scale_policy_requires_elastic_backend(self):
        plan = plan_from_design(DESIGN, 2)
        from repro.engine import AssemblySink

        with pytest.raises(GenerationError, match="scale_policy requires"):
            execute(
                plan,
                AssemblySink(),
                config=RunConfig(backend="serial"),
                scale_policy=lambda stats: 2,
            )


# -- churn adversary ----------------------------------------------------------
class TestWorkerRevoker:
    def test_actions_validate(self):
        with pytest.raises(GenerationError, match="unknown trigger"):
            ChurnAction(trigger="teatime", at=1, op="revoke")
        with pytest.raises(GenerationError, match="unknown op"):
            ChurnAction(trigger="submit", at=1, op="explode")
        with pytest.raises(GenerationError, match="at must be"):
            ChurnAction(trigger="submit", at=0, op="revoke")
        with pytest.raises(GenerationError, match="workers must be"):
            ChurnAction(trigger="submit", at=1, op="add", workers=0)

    def test_fires_each_action_once(self):
        pool = make_pool(workers=2)
        action = ChurnAction(trigger="submit", at=2, op="add", workers=1)
        rev = WorkerRevoker([action]).attach(pool)
        try:
            pool.map(lambda x: x, range(6))
            assert rev.fired == [(action, (2,))]
            assert pool.worker_count() == 3
        finally:
            pool.shutdown()

    def test_revoke_clamped_to_pool_size(self):
        pool = make_pool(workers=1)
        rev = WorkerRevoker(
            [ChurnAction(trigger="submit", at=1, op="revoke", workers=5)]
        ).attach(pool)
        # The adversary must clamp to the 1 alive member instead of
        # crashing; the scale policy then regrows capacity so the
        # queued work still finishes.
        pool.set_scale_policy(lambda stats: 1 if stats.queued else None)
        try:
            assert pool.map(lambda x: x + 1, [1, 2]) == [2, 3]
            (fired,) = rev.fired
            assert len(fired[1]) == 1
        finally:
            pool.shutdown()


# -- executor reassignment ---------------------------------------------------
class _LoseFirstHandle:
    def __init__(self, error):
        self._error = error

    def result(self):
        raise self._error


class LoseFirstBackend:
    """Streaming backend that loses chosen task indices' first
    submission with WorkerLostError, then delegates to serial."""

    name = "lose-first"

    def __init__(self, lose_indices, forever=False):
        self.lose = set(lose_indices)
        self.forever = forever
        self.inner = SerialBackend()
        self.lost_submissions = 0

    def submit(self, fn, task):
        if task.index in self.lose:
            if not self.forever:
                self.lose.discard(task.index)
            self.lost_submissions += 1
            return _LoseFirstHandle(
                WorkerLostError(f"synthetic loss of task {task.index}")
            )
        return self.inner.submit(fn, task)

    def as_completed(self, handles):
        return iter(handles)

    def map(self, fn, items):
        return [self.submit(fn, item).result() for item in items]


class TestExecutorReassignment:
    def test_reassigned_task_keeps_identity_and_attempt(self):
        backend = LoseFirstBackend({1})
        metrics = MetricsRegistry()
        executor = RankExecutor(backend, metrics=metrics)
        done = list(executor.run_iter(lambda t: t * 10, [5, 6, 7]))
        values = {c.index: c.value for c in done}
        assert values == {0: 50, 1: 60, 2: 70}
        # The lost submission added no attempt record: reassignment is
        # not a retry.
        report = next(c.report for c in done if c.index == 1)
        assert [a.attempt for a in report.attempts] == [0]
        assert (
            metrics.snapshot()["counters"]["engine.reassigned_tasks"] == 1
        )

    def test_reassignment_does_not_consume_retry_budget(self):
        # Task 0 both loses its worker AND fails its (reassigned) first
        # attempt; with max_retries=1 it must still succeed — worker
        # loss and task failure draw on separate budgets.
        backend = LoseFirstBackend({0})
        injector = FailureInjector([0], fail_attempts=1)

        def fn(task):
            return task

        executor = RankExecutor(backend, max_retries=1, sleep=lambda _: None)
        done = list(
            executor.run_iter(fn, ["a", "b"], injector=lambda i, a: injector(i, a))
        )
        report = next(c.report for c in done if c.index == 0)
        # attempt 0 (post-reassignment) failed via the injector, attempt
        # 1 succeeded: the injector saw the original attempt number.
        assert [a.ok for a in report.attempts] == [False, True]

    def test_reassignment_budget_exhausts(self):
        backend = LoseFirstBackend({0}, forever=True)
        executor = RankExecutor(backend, max_reassignments=3)
        with pytest.raises(RetryExhaustedError, match="reassignment budget 3"):
            list(executor.run_iter(lambda t: t, [1]))
        assert backend.lost_submissions == 4  # initial + 3 reassignments

    def test_max_in_flight_accepts_callable(self):
        calls = []

        def limit():
            calls.append(1)
            return 2

        executor = RankExecutor(ThreadBackend(max_workers=2))
        done = list(
            executor.run_iter(lambda t: t, list(range(5)), max_in_flight=limit)
        )
        assert len(done) == 5
        assert calls  # the limit was actually consulted

    def test_rank_mapped_injector_identity_across_reassignment(self):
        seen = []
        injector = _RankMappedInjector(
            ((0, 7), (1, 3)), lambda rank, attempt: seen.append((rank, attempt))
        )
        injector(0, 0)
        injector(0, 0)  # the same task index, re-dispatched after a loss
        injector(1, 0)
        assert seen == [(7, 0), (7, 0), (3, 0)]


# -- engine integration -------------------------------------------------------
def _static_reference(tmp, n_ranks=8):
    ref = Path(tmp) / "reference"
    plan = plan_from_design(DESIGN, n_ranks, memory_budget_entries=63)
    execute(plan, ShardSink(ref), config=RunConfig(backend="serial"))
    return ref


def _read_dir(directory):
    return {
        p.name: p.read_bytes()
        for p in sorted(Path(directory).iterdir())
        if p.suffix == ".tsv" or p.name == "manifest.json"
    }


class TestEngineElastic:
    def test_churned_run_byte_identical_and_metered(self, tmp_path):
        ref = _static_reference(tmp_path)
        plan = plan_from_design(DESIGN, 8, memory_budget_entries=63)
        metrics = MetricsRegistry()
        pool = make_pool(workers=3)
        WorkerRevoker(
            [
                ChurnAction(trigger="dispatch", at=2, op="revoke"),
                ChurnAction(trigger="complete", at=1, op="add"),
            ]
        ).attach(pool)
        out = tmp_path / "churned"
        try:
            execute(
                plan,
                ShardSink(out),
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
                metrics=metrics,
            )
            snap = metrics.snapshot()  # before shutdown zeroes the gauge
        finally:
            pool.shutdown()
        assert _read_dir(out) == _read_dir(ref)
        assert snap["counters"]["engine.revocations"] == 1
        assert snap["counters"]["engine.reassigned_tasks"] >= 1
        assert "engine.lease_expiries" in snap["counters"]
        assert snap["gauges"]["engine.workers_active"] == 3  # 3 - 1 + 1

    def test_autoscaled_run_byte_identical(self, tmp_path):
        ref = _static_reference(tmp_path)
        plan = plan_from_design(DESIGN, 8, memory_budget_entries=63)
        pool = ElasticWorkerPool(ThreadBackend(max_workers=8), workers=1)
        out = tmp_path / "scaled"
        grew = []
        try:
            execute(
                plan,
                ShardSink(out),
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
                scale_policy=lambda stats: grew.append(stats)
                or min(4, stats.queued + stats.in_flight),
            )
        finally:
            pool.shutdown()
        assert _read_dir(out) == _read_dir(ref)
        assert grew  # the policy was consulted
        assert pool.stats().submitted == 8

    def test_failure_injection_addresses_ranks_across_churn(self, tmp_path):
        # The _RankMappedInjector regression at engine level: rank 5
        # fails its first attempt AND the pool churns; the injected
        # schedule must follow the rank (task identity), and output must
        # still match the static run.
        ref = _static_reference(tmp_path)
        plan = plan_from_design(DESIGN, 8, memory_budget_entries=63)
        pool = make_pool(workers=2)
        WorkerRevoker(
            [ChurnAction(trigger="dispatch", at=1, op="revoke")]
        ).attach(pool)
        out = tmp_path / "churn-inject"
        try:
            execute(
                plan,
                ShardSink(out),
                config=RunConfig(backend=pool, scheduler=WorkQueueScheduler()),
                max_retries=1,
                failure_injector=FailureInjector([5], fail_attempts=1),
            )
        finally:
            pool.shutdown()
        assert _read_dir(out) == _read_dir(ref)


# -- hypothesis churn schedules ----------------------------------------------
churn_actions = st.lists(
    st.builds(
        ChurnAction,
        trigger=st.sampled_from(["submit", "dispatch", "complete"]),
        at=st.integers(min_value=1, max_value=10),
        op=st.sampled_from(["revoke", "add", "remove"]),
        workers=st.integers(min_value=1, max_value=2),
        silent=st.booleans(),
    ),
    max_size=4,
)


class TestChurnScheduleProperty:
    @classmethod
    def reference(cls):
        if not hasattr(cls, "_ref"):
            cls._tmp = tempfile.TemporaryDirectory()
            cls._ref = _read_dir(_static_reference(cls._tmp.name, n_ranks=6))
        return cls._ref

    @settings(max_examples=12, deadline=None)
    @given(actions=churn_actions, scheduler_name=st.sampled_from(["static", "queue"]))
    def test_any_schedule_is_byte_identical(self, actions, scheduler_name):
        reference = self.reference()
        plan = plan_from_design(DESIGN, 6, memory_budget_entries=63)
        scheduler = (
            WorkQueueScheduler()
            if scheduler_name == "queue"
            else StaticScheduler(batch_size=1)
        )
        pool = make_pool(workers=2)
        # A schedule that revokes/removes everything with no replacement
        # must not stall the suite: guarantee eventual capacity.
        pool.set_scale_policy(
            lambda stats: 1 if stats.workers == 0 and stats.queued else None
        )
        WorkerRevoker(actions).attach(pool)
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "out"
            try:
                execute(
                    plan,
                    ShardSink(out),
                    config=RunConfig(backend=pool, scheduler=scheduler),
                )
            finally:
                pool.shutdown()
            assert _read_dir(out) == reference


# -- broken process pools (satellite: MultiprocessingBackend teardown) --------
def _exit_hard(_):
    os._exit(13)


@dataclass(frozen=True)
class _KillProcessOnce:
    """Kill the worker process on the first call; no-op once the flag
    file exists (so the reassigned task completes).  Module-level and
    frozen for pickling into the pool."""

    flag_dir: str

    def __call__(self, task):
        flag = Path(self.flag_dir) / "killed"
        if not flag.exists():
            flag.write_text("x")
            os._exit(17)
        return task * 2


class TestBrokenPoolRecovery:
    def test_submit_rebuilds_after_worker_death(self):
        from concurrent.futures.process import BrokenProcessPool

        backend = MultiprocessingBackend(processes=1)
        try:
            with pytest.raises(BrokenProcessPool):
                backend.submit(_exit_hard, None).result()
            # The old contract left the executor broken forever; now the
            # next submit gets a fresh pool.
            assert backend.submit(len, "abcd").result() == 4
        finally:
            backend.shutdown()

    def test_run_iter_reassigns_across_pool_rebuild(self, tmp_path):
        backend = MultiprocessingBackend(processes=1)
        metrics = MetricsRegistry()
        executor = RankExecutor(backend, metrics=metrics)
        try:
            done = list(
                executor.run_iter(
                    _KillProcessOnce(str(tmp_path)), [3, 4], max_in_flight=1
                )
            )
        finally:
            backend.shutdown()
        assert {c.index: c.value for c in done} == {0: 6, 1: 8}
        assert metrics.snapshot()["counters"]["engine.reassigned_tasks"] >= 1
