"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDesignCommand:
    def test_prints_exact_properties(self, capsys):
        assert main(["design", "5", "3", "--self-loop", "center"]) == 0
        out = capsys.readouterr().out
        assert "24" in out and "76" in out and "15" in out

    def test_error_path_returns_2(self, capsys):
        assert main(["design", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_legacy_output_unchanged_without_catalog_flags(self, capsys):
        from repro.design import PowerLawDesign

        assert main(["design", "5", "3", "--self-loop", "center"]) == 0
        out = capsys.readouterr().out
        expected = PowerLawDesign([5, 3], "center").report().to_text(max_rows=12)
        assert out == expected + "\n"

    def test_catalog_table_output(self, capsys):
        assert (
            main(
                [
                    "design", "3", "4", "5",
                    "--self-loop", "center",
                    "--catalog", "--participation",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "catalog record [analytic]" in out
        assert "287" in out  # triangles
        assert "participation:" in out

    def test_catalog_json_round_trips(self, capsys):
        import json

        from repro.catalog import DesignProperties

        assert (
            main(["design", "3", "4", "5", "--self-loop", "center", "--json"])
            == 0
        )
        record = DesignProperties.from_doc(
            json.loads(capsys.readouterr().out)
        )
        assert record.num_vertices == 120
        assert record.num_edges == 692

    def test_cache_dir_writes_entry(self, tmp_path, capsys):
        cache = tmp_path / "catalog"
        assert (
            main(
                [
                    "design", "3", "4",
                    "--self-loop", "center",
                    "--json", "--cache-dir", str(cache),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "catalog entry:" in err
        assert len(list(cache.glob("*.analytic.json"))) == 1
        # A second run is served from the same entry, byte-identically.
        entry = next(cache.glob("*.analytic.json"))
        before = entry.read_bytes()
        assert (
            main(
                [
                    "design", "3", "4",
                    "--self-loop", "center",
                    "--json", "--cache-dir", str(cache),
                ]
            )
            == 0
        )
        assert entry.read_bytes() == before

    def test_catalog_model_flag(self, capsys):
        import json

        assert (
            main(
                [
                    "design", "3", "4",
                    "--self-loop", "center",
                    "--model", "noisy-skg",
                    "--model-seed", "3",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "noisy-skg"


class TestSearchCommand:
    def test_search(self, capsys):
        assert main(["search", "100000"]) == 0
        assert "found design" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_with_output(self, tmp_path, capsys):
        out_dir = tmp_path / "ranks"
        assert main(["generate", "3", "4", "--ranks", "3", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "simulated aggregate rate" in out
        assert len(list(out_dir.glob("edges.*.tsv"))) == 3

    def test_generate_without_output(self, capsys):
        assert main(["generate", "3", "4", "--ranks", "2"]) == 0

    def test_generate_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "generate", "3", "4", "5",
                    "--ranks", "3",
                    "--max-retries", "2",
                    "--metrics-out", str(path),
                ]
            )
            == 0
        )
        assert "wrote metrics snapshot" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["ranks.completed"] == 3
        run = snapshot["run"]
        assert run["edges_per_second"] > 0
        ranks = run["execution"]["ranks"]
        assert len(ranks) == 3
        assert all("elapsed_s" in r and "retries" in r for r in ranks)

    def test_generate_backend_flag(self, capsys):
        assert main(["generate", "3", "4", "--ranks", "2", "--backend", "thread"]) == 0
        assert "simulated aggregate rate" in capsys.readouterr().out

    def test_generate_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "3", "4", "--backend", "smoke-signals"])


class TestValidateCommand:
    def test_passing_validation(self, capsys):
        assert main(["validate", "3", "4", "--self-loop", "leaf"]) == 0
        assert "VALIDATION PASSED" in capsys.readouterr().out


class TestScaleCommand:
    def test_sweep(self, capsys):
        assert main(["scale", "3", "4", "5", "--ranks", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out and "rate" in out

    def test_sweep_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "scale.json"
        assert (
            main(["scale", "3", "4", "--ranks", "1", "2", "--metrics-out", str(path)])
            == 0
        )
        snapshot = json.loads(path.read_text())
        assert snapshot["run"]["command"] == "scale"
        assert len(snapshot["run"]["sweep"]) == 2
        # 1-rank + 2-rank runs -> 3 rank completions recorded.
        assert snapshot["counters"]["ranks.completed"] == 3


class TestSpectrumCommand:
    def test_prints_spectrum(self, capsys):
        assert main(["spectrum", "3", "4", "--self-loop", "center"]) == 0
        out = capsys.readouterr().out
        assert "spectral radius" in out
        assert "distinct eigenvalues" in out

    def test_raw_nnz_moment_shown(self, capsys):
        assert main(["spectrum", "5", "3"]) == 0
        assert "lambda^2" in capsys.readouterr().out


class TestTrianglesCommand:
    def test_enumerates_and_checks(self, capsys):
        assert main(["triangles", "5", "3", "--self-loop", "center", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "predicted triangles: 15" in out
        assert "enumerated: 15" in out
        assert "... (12 more)" in out

    def test_zero_triangle_design(self, capsys):
        assert main(["triangles", "3", "4"]) == 0
        assert "enumerated: 0" in capsys.readouterr().out


class TestSpyCommand:
    def test_plain(self, capsys):
        assert main(["spy", "5", "3"]) == 0
        out = capsys.readouterr().out
        assert "nnz 60" in out

    def test_permuted(self, capsys):
        assert main(["spy", "5", "3", "--permute-components", "--width", "20"]) == 0
        assert "component-permuted" in capsys.readouterr().out


class TestEstimateCommand:
    def test_feasible(self, capsys):
        assert main(["estimate", "3", "4", "5"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out

    def test_infeasible_budget(self, capsys):
        rc = main(["estimate", "3", "4", "5", "--rank-memory-gb", "0.0000001"])
        assert rc == 1
        assert "no feasible" in capsys.readouterr().out


class TestCheckFilesCommand:
    def _setup(self, tmp_path, loop="center"):
        from repro.design import PowerLawDesign
        from repro.io import save_design
        from repro.parallel import generate_to_disk

        design = PowerLawDesign([3, 4, 5], loop)
        save_design(tmp_path / "design.json", design)
        generate_to_disk(design, 4, tmp_path / "ranks")
        return design

    def test_passing_check(self, tmp_path, capsys):
        self._setup(tmp_path)
        rc = main(
            ["check-files", str(tmp_path / "design.json"), str(tmp_path / "ranks")]
        )
        assert rc == 0
        assert "EXACT" in capsys.readouterr().out

    def test_corrupted_file_fails(self, tmp_path, capsys):
        self._setup(tmp_path)
        victim = next((tmp_path / "ranks").glob("edges.*.tsv"))
        lines = victim.read_text().splitlines()
        victim.write_text("\n".join(lines[:-1]) + "\n")  # drop one edge
        rc = main(
            ["check-files", str(tmp_path / "design.json"), str(tmp_path / "ranks")]
        )
        assert rc == 1
        assert "mismatching" in capsys.readouterr().out

    def test_missing_files_error(self, tmp_path, capsys):
        from repro.design import PowerLawDesign
        from repro.io import save_design

        save_design(tmp_path / "design.json", PowerLawDesign([3]))
        (tmp_path / "empty").mkdir()
        rc = main(
            ["check-files", str(tmp_path / "design.json"), str(tmp_path / "empty")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestGenerateStream:
    def test_stream_writes_manifest_and_shards(self, tmp_path, capsys):
        out_dir = tmp_path / "shards"
        rc = main(
            ["generate", "3", "4", "5", "--ranks", "3",
             "--out", str(out_dir), "--stream"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "streamed" in out and "manifest" in out
        assert (out_dir / "manifest.json").is_file()
        assert len(list(out_dir.glob("edges.*.tsv"))) == 3

    def test_stream_requires_out(self, capsys):
        assert main(["generate", "3", "4", "--stream"]) == 2
        assert "require --out" in capsys.readouterr().err

    def test_resume_completes_interrupted_run(self, tmp_path, capsys):
        import pytest as _pytest

        from repro.design import PowerLawDesign
        from repro.parallel import generate_to_disk
        from repro.runtime import CrashInjector, SimulatedCrash

        out_dir = tmp_path / "shards"
        with _pytest.raises(SimulatedCrash):
            generate_to_disk(
                PowerLawDesign([3, 4, 5], "center"), 4, out_dir,
                crash_hook=CrashInjector(2),
            )
        rc = main(
            ["generate", "3", "4", "5", "--self-loop", "center",
             "--ranks", "4", "--out", str(out_dir), "--resume"]
        )
        assert rc == 0
        assert "2 reused from checkpoint, 2 generated" in capsys.readouterr().out


class TestVerifyShardsCommand:
    def _streamed(self, tmp_path):
        from repro.design import PowerLawDesign
        from repro.parallel import generate_to_disk

        return generate_to_disk(
            PowerLawDesign([3, 4, 5], "center"), 4, tmp_path / "shards"
        )

    def test_passing_verification(self, tmp_path, capsys):
        self._streamed(tmp_path)
        assert main(["verify-shards", str(tmp_path / "shards")]) == 0
        out = capsys.readouterr().out
        assert "VERIFICATION PASSED" in out
        assert "EXACT" in out

    def test_corrupt_shard_fails_with_rank_named(self, tmp_path, capsys):
        from pathlib import Path

        summary = self._streamed(tmp_path)
        victim = Path(summary.files[1])
        data = bytearray(victim.read_bytes())
        data[0] ^= 1
        victim.write_bytes(bytes(data))
        assert main(["verify-shards", str(tmp_path / "shards")]) == 1
        out = capsys.readouterr().out
        assert "VERIFICATION FAILED" in out
        assert "rank 1" in out

    def test_no_degrees_flag(self, tmp_path, capsys):
        self._streamed(tmp_path)
        assert main(["verify-shards", str(tmp_path / "shards"), "--no-degrees"]) == 0
        assert "degree distribution" not in capsys.readouterr().out

    def test_missing_manifest_errors(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["verify-shards", str(tmp_path / "empty")]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
