"""Unit tests for the design search utilities."""

import pytest

from repro.design import design_for_scale, has_unique_degree_products, star_size_pool
from repro.design.search import _prime_base, enumerate_designs
from repro.errors import DesignSearchError


class TestStarSizePool:
    def test_contains_paper_sizes(self):
        pool = star_size_pool(15000)
        for size in (3, 4, 5, 9, 16, 25, 81, 256, 625, 2401, 14641):
            assert size in pool

    def test_excludes_two_and_one(self):
        pool = star_size_pool()
        assert 1 not in pool and 2 not in pool

    def test_sorted_unique(self):
        pool = star_size_pool(100)
        assert pool == sorted(set(pool))

    def test_respects_max(self):
        assert max(star_size_pool(100)) <= 100


class TestPrimeBase:
    def test_prime_powers(self):
        assert _prime_base(8) == 2
        assert _prime_base(81) == 3
        assert _prime_base(7) == 7

    def test_non_prime_power(self):
        assert _prime_base(12) is None
        assert _prime_base(1) is None


class TestUniqueDegreeProducts:
    def test_paper_fig5_set(self):
        assert has_unique_degree_products([3, 4, 5, 9, 16, 25, 81, 256, 625])

    def test_paper_fig7_set_uses_signature_path(self):
        # 15 sizes -> exhaustive 2^15 check still runs; verify it passes.
        assert has_unique_degree_products(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]
        )

    def test_collision_detected(self):
        # 3 * 4 == 12 collides with {12}.
        assert not has_unique_degree_products([3, 4, 12])

    def test_duplicate_sizes_collide(self):
        assert not has_unique_degree_products([5, 5])

    def test_signature_fallback_for_large_lists(self):
        sizes = [p**k for p in (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43) for k in (1, 2)]
        assert len(sizes) > 24
        assert has_unique_degree_products(sizes)

    def test_signature_fallback_rejects_shared_base(self):
        sizes = [3**k for k in range(1, 26)]
        # shares base 3 across all; 3*9 == 27 collides -> must be False.
        assert not has_unique_degree_products(sizes)


class TestDesignForScale:
    def test_hits_small_target(self):
        d = design_for_scale(10_000, rel_tol=0.5)
        assert 5_000 <= d.num_edges <= 20_000

    def test_hits_large_target_without_generation(self):
        d = design_for_scale(10**12, rel_tol=0.5)
        assert 0.5 <= d.num_edges / 10**12 <= 2.0

    def test_result_is_exact_power_law(self):
        d = design_for_scale(10**6, rel_tol=0.5)
        assert d.is_exact_power_law()

    def test_with_loop_policy(self):
        d = design_for_scale(10**5, self_loop="center", rel_tol=0.5)
        assert d.num_triangles > 0

    def test_rejects_tiny_target(self):
        with pytest.raises(DesignSearchError):
            design_for_scale(1)

    def test_impossible_tolerance(self):
        # An absurdly tight tolerance around an unreachable value fails.
        with pytest.raises(DesignSearchError):
            design_for_scale(9973, rel_tol=1e-9, pool=[3, 4])


class TestEnumerateDesigns:
    def test_enumerates_valid_combos(self):
        designs = list(enumerate_designs([3, 4, 5], 2))
        sizes = {d.star_sizes for d in designs}
        assert (3, 4) in sizes and (3, 5) in sizes and (4, 5) in sizes

    def test_skips_colliding_combos(self):
        designs = list(enumerate_designs([3, 4, 12], 2))
        sizes = {d.star_sizes for d in designs}
        assert (3, 4) in sizes
        assert (3, 12) in sizes
        assert (4, 12) in sizes
        # the triple (3,4,12) would collide but pairs are fine
        assert len(list(enumerate_designs([3, 4, 12], 3))) == 0
