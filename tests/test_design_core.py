"""Unit tests for triangles, corrections, chain properties, and reports."""

import pytest

from repro.design import (
    ChainProperties,
    DegreeDistribution,
    chain_properties,
    corrected_degree_distribution,
    corrected_edge_count,
    corrected_triangle_count,
    triangle_count_raw,
    triangle_factor,
)
from repro.design.properties import loop_vertex_degree
from repro.design.triangles import star_triangle_factor
from repro.errors import DesignError, ShapeError
from repro.graphs import Graph, StarGraph, complete_graph, cycle_graph, star_adjacency
from repro.sparse import zeros


class TestTriangleFactor:
    def test_star_object_uses_closed_form(self):
        assert triangle_factor(StarGraph(7, "center")) == 22

    def test_matrix_generic_path(self):
        assert triangle_factor(star_adjacency(7, "center")) == 22

    def test_k3_factor(self):
        # K3 has 1 triangle -> raw factor 6.
        assert triangle_factor(complete_graph(3)) == 6

    def test_star_triangle_factor_helper(self):
        assert star_triangle_factor(5) == 0
        assert star_triangle_factor(5, "center") == 16
        assert star_triangle_factor(5, "leaf") == 4

    def test_raw_product(self):
        assert triangle_count_raw([StarGraph(5, "center"), StarGraph(3, "center")]) == 160

    def test_raw_product_zero_for_bipartite(self):
        assert triangle_count_raw([StarGraph(5), StarGraph(3)]) == 0


class TestCorrections:
    def test_edge_correction(self):
        assert corrected_edge_count(100) == 99

    def test_edge_correction_rejects_empty(self):
        with pytest.raises(DesignError):
            corrected_edge_count(0)

    def test_degree_correction(self):
        d = DegreeDistribution({3: 2, 24: 1})
        out = corrected_degree_distribution(d, 24)
        assert out.to_dict() == {3: 2, 23: 1}

    def test_degree_correction_bad_loop_degree(self):
        with pytest.raises(DesignError):
            corrected_degree_distribution(DegreeDistribution({2: 1}), 0)

    def test_triangle_correction_fig2_top(self):
        # Two center-loop stars (5, 3): raw 160, loop degree 24 -> 15.
        assert corrected_triangle_count(160, 24) == 15

    def test_triangle_correction_fig2_bottom(self):
        # Two leaf-loop stars: raw 16, loop degree 4 -> 1 (the paper's
        # body text; the figure caption's "3" is a typo).
        assert corrected_triangle_count(16, 4) == 1

    def test_triangle_correction_single_star_is_zero(self):
        # One center-loop star alone has no triangles after loop removal.
        for m_hat in (1, 2, 5, 9):
            raw = star_triangle_factor(m_hat, "center")
            assert corrected_triangle_count(raw, m_hat + 1) == 0

    def test_non_integer_correction_rejected(self):
        with pytest.raises(DesignError):
            corrected_triangle_count(7, 2)

    def test_negative_correction_rejected(self):
        with pytest.raises(DesignError):
            corrected_triangle_count(0, 10)

    def test_correction_matches_brute_force(self):
        # Realize center-loop products, remove the loop, count triangles.
        for sizes in ([2, 3], [3, 4], [2, 2, 2]):
            stars = [StarGraph(m, "center") for m in sizes]
            raw = triangle_count_raw(stars)
            loop_degree = 1
            for m in sizes:
                loop_degree *= m + 1
            predicted = corrected_triangle_count(raw, loop_degree)
            from repro.kron import kron_chain

            adj = kron_chain([s.adjacency() for s in stars]).without_self_loop(0)
            assert Graph(adj).num_triangles() == predicted, sizes


class TestChainProperties:
    def test_star_chain(self):
        props = chain_properties([star_adjacency(5), star_adjacency(3)])
        assert props.num_vertices == 24
        assert props.nnz == 60
        assert props.triangles == 0
        assert props.degree_distribution.to_dict() == {1: 15, 3: 5, 5: 3, 15: 1}

    def test_matches_realized(self):
        mats = [star_adjacency(3), cycle_graph(4), complete_graph(3)]
        props = chain_properties(mats)
        from repro.kron import kron_chain

        g = Graph(kron_chain(mats))
        assert props.num_vertices == g.num_vertices
        assert props.nnz == g.num_edges
        assert props.degree_distribution == g.degree_distribution()
        assert props.triangles == g.num_triangles()

    def test_triangles_undefined_with_loops(self):
        props = chain_properties([star_adjacency(2, "center")])
        with pytest.raises(DesignError):
            _ = props.triangles

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            chain_properties([zeros((2, 3))])

    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            chain_properties([])

    def test_num_edges_alias(self):
        props = chain_properties([star_adjacency(4)])
        assert props.num_edges == props.nnz == 8


class TestLoopVertexDegree:
    def test_center_loops(self):
        mats = [star_adjacency(3, "center"), star_adjacency(2, "center")]
        flat, degree = loop_vertex_degree(mats, [0, 0])
        assert flat == 0
        assert degree == 4 * 3  # (m̂+1) per factor

    def test_leaf_loops(self):
        mats = [star_adjacency(3, "leaf"), star_adjacency(2, "leaf")]
        flat, degree = loop_vertex_degree(mats, [3, 2])
        assert flat == 4 * 3 - 1  # last vertex
        assert degree == 4  # 2 per factor

    def test_missing_loop_rejected(self):
        with pytest.raises(DesignError):
            loop_vertex_degree([star_adjacency(3)], [0])

    def test_digit_count_mismatch(self):
        with pytest.raises(DesignError):
            loop_vertex_degree([star_adjacency(3, "center")], [0, 0])


class TestDesignReport:
    def test_text_contains_counts(self):
        from repro.design import PowerLawDesign

        text = PowerLawDesign([5, 3], "center").report().to_text()
        assert "24" in text
        assert "76" in text
        assert "15" in text

    def test_text_truncates_long_distributions(self):
        from repro.design import PowerLawDesign

        report = PowerLawDesign([3, 4, 5, 9, 16], "center").report()
        text = report.to_text(max_rows=5)
        assert "more rows" in text

    def test_to_dict_roundtrippable(self):
        import json

        from repro.design import PowerLawDesign

        doc = PowerLawDesign([5, 3]).report().to_dict()
        parsed = json.loads(json.dumps(doc))
        assert parsed["num_edges"] == 60
