"""Unit tests for k-truss decomposition and clustering coefficients."""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis import TrussResult, edge_support, k_truss, max_truss_number
from repro.design import PowerLawDesign
from repro.errors import ValidationError
from repro.graphs import Graph, complete_graph, cycle_graph, empty_graph, star_adjacency
from repro.kron import kron
from repro.sparse import from_edges


def _nx(graph: Graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    for r, c, _ in graph.adjacency:
        if r < c:
            G.add_edge(int(r), int(c))
    return G


class TestEdgeSupport:
    def test_complete_graph_uniform_support(self):
        s = edge_support(Graph(complete_graph(5)))
        assert set(s.vals.tolist()) == {3}
        assert s.nnz == 20

    def test_triangle_free_graph_zero_support(self):
        s = edge_support(Graph(star_adjacency(5)))
        assert s.nnz == 10
        assert set(s.vals.tolist()) == {0}

    def test_pattern_matches_adjacency(self):
        g = PowerLawDesign([3, 2], "center").realize()
        s = edge_support(g)
        assert np.array_equal(s.rows, g.adjacency.rows)
        assert np.array_equal(s.cols, g.adjacency.cols)

    def test_rejects_loops(self):
        with pytest.raises(ValidationError):
            edge_support(Graph(star_adjacency(3, "center")))


class TestKTruss:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_matches_networkx(self, k):
        import networkx as nx

        for mat in (
            complete_graph(6),
            cycle_graph(7),
            kron(star_adjacency(3, "center"), star_adjacency(2, "center")).without_self_loop(0),
        ):
            g = Graph(mat)
            ours = {
                (int(r), int(c))
                for r, c, _ in k_truss(g, k).subgraph.adjacency
                if r < c
            }
            theirs = {tuple(sorted(e)) for e in nx.k_truss(_nx(g), k).edges()}
            assert ours == theirs, (k, mat.shape)

    def test_k2_keeps_everything(self):
        g = Graph(star_adjacency(4))
        assert k_truss(g, 2).num_edges == g.num_edges

    def test_k3_removes_triangle_free_edges(self):
        assert k_truss(Graph(star_adjacency(4)), 3).num_edges == 0

    def test_result_is_dataclass(self):
        result = k_truss(Graph(complete_graph(4)), 3)
        assert isinstance(result, TrussResult)
        assert result.rounds >= 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            k_truss(Graph(complete_graph(3)), 1)

    def test_cascading_removal(self):
        # K4 plus a pendant triangle chain: 4-truss strips the chain.
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)]
        g = Graph(from_edges(5, edges))
        result = k_truss(g, 4)
        kept = {(int(r), int(c)) for r, c, _ in result.subgraph.adjacency if r < c}
        assert kept == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}


class TestMaxTruss:
    def test_complete_graph(self):
        assert max_truss_number(Graph(complete_graph(5))) == 5

    def test_triangle_free(self):
        assert max_truss_number(Graph(cycle_graph(6))) == 2

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            max_truss_number(Graph(empty_graph(3)))


class TestClustering:
    def test_design_wedges_exact(self):
        d = PowerLawDesign([5, 3])
        # wedges from the distribution {1:15, 3:5, 5:3, 15:1}.
        expected = 5 * 3 + 3 * 10 + 1 * 105
        assert d.num_wedges == expected

    def test_design_vs_measured(self):
        for loop in (None, "center", "leaf"):
            d = PowerLawDesign([3, 4, 2], loop)
            g = d.realize()
            assert g.num_wedges() == d.num_wedges
            assert g.clustering_coefficient() == pytest.approx(
                float(d.clustering_coefficient)
            )

    def test_complete_graph_clustering_is_one(self):
        assert Graph(complete_graph(6)).clustering_coefficient() == pytest.approx(1.0)

    def test_bipartite_clustering_is_zero(self):
        d = PowerLawDesign([3, 4, 5])
        assert d.clustering_coefficient == Fraction(0)
        assert d.realize().clustering_coefficient() == 0.0

    def test_fig4_scale_clustering_computable(self):
        d = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256], "center")
        c = d.clustering_coefficient
        assert 0 < c < 1
        assert c.numerator == 3 * 6_777_007_252_427
