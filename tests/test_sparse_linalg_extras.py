"""Unit tests for tril/triu, apply/select, matvec, and masked SpGEMM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    apply_values,
    from_dense,
    matvec,
    select_entries,
    tril,
    triu,
)
from repro.sparse.kernels import SPGEMM_CHUNK_FANOUT
from tests.conftest import random_dense


class TestTriangularParts:
    def test_tril_strict(self, rng):
        A = random_dense(rng, 6, 6)
        np.testing.assert_array_equal(tril(from_dense(A)).to_dense(), np.tril(A, -1))

    def test_tril_inclusive(self, rng):
        A = random_dense(rng, 6, 6)
        np.testing.assert_array_equal(
            tril(from_dense(A), strict=False).to_dense(), np.tril(A)
        )

    def test_triu_strict(self, rng):
        A = random_dense(rng, 6, 6)
        np.testing.assert_array_equal(triu(from_dense(A)).to_dense(), np.triu(A, 1))

    def test_tril_plus_triu_plus_diag_reconstructs(self, rng):
        A = random_dense(rng, 5, 5)
        m = from_dense(A)
        recon = (
            tril(m).to_dense() + triu(m).to_dense() + np.diag(np.diag(A))
        )
        np.testing.assert_array_equal(recon, A)


class TestApplySelect:
    def test_apply_scales(self, rng):
        A = random_dense(rng, 4, 4)
        out = apply_values(from_dense(A), lambda v: v * 3)
        np.testing.assert_array_equal(out.to_dense(), A * 3)

    def test_apply_dropping_zeros(self):
        m = from_dense(np.array([[1, 2], [3, 0]]))
        out = apply_values(m, lambda v: v - 1)  # the 1 entry becomes 0
        assert out.nnz == 2

    def test_apply_shape_guard(self):
        m = from_dense(np.eye(2, dtype=np.int64))
        with pytest.raises(ShapeError):
            apply_values(m, lambda v: v[:1])

    def test_select_by_value(self, rng):
        A = random_dense(rng, 5, 5)
        out = select_entries(from_dense(A), lambda r, c, v: v >= 3)
        np.testing.assert_array_equal(out.to_dense(), np.where(A >= 3, A, 0))

    def test_select_by_position(self, rng):
        A = random_dense(rng, 5, 5)
        out = select_entries(from_dense(A), lambda r, c, v: r > c)
        np.testing.assert_array_equal(out.to_dense(), np.tril(A, -1))

    def test_select_shape_guard(self):
        m = from_dense(np.eye(2, dtype=np.int64))
        with pytest.raises(ShapeError):
            select_entries(m, lambda r, c, v: np.array([True]))


class TestMatvec:
    def test_matches_dense(self, rng):
        A = random_dense(rng, 6, 4)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(matvec(from_dense(A), x), A @ x)

    def test_shape_guard(self, rng):
        with pytest.raises(ShapeError):
            matvec(from_dense(random_dense(rng, 3, 3)), np.zeros(4))


class TestMaskedMatmul:
    def test_mask_restricts_output_pattern(self, rng):
        A = random_dense(rng, 8, 8)
        sa = from_dense(A).to_csr()
        masked = sa.matmul(sa, mask=sa).to_dense()
        full = A @ A
        expected = np.where(A != 0, full, 0)
        np.testing.assert_array_equal(masked, expected)

    def test_empty_mask_empty_output(self, rng):
        from repro.sparse import zeros

        A = random_dense(rng, 4, 4)
        sa = from_dense(A).to_csr()
        out = sa.matmul(sa, mask=zeros((4, 4)).to_csr())
        assert out.nnz == 0

    def test_mask_shape_guard(self, rng):
        from repro.sparse import zeros

        sa = from_dense(random_dense(rng, 4, 4)).to_csr()
        with pytest.raises(ShapeError):
            sa.matmul(sa, mask=zeros((5, 5)).to_csr())

    def test_chunked_path_matches_single_pass(self, rng):
        # Force chunking with a tiny chunk budget and compare kernels.
        from repro.sparse import kernels

        A = random_dense(rng, 20, 20, density=0.4)
        B = random_dense(rng, 20, 20, density=0.4)
        sa, sb = from_dense(A).to_csr(), from_dense(B).to_csr()
        single = kernels.csr_matmul(
            sa.indptr, sa.indices, sa.data, sb.indptr, sb.indices, sb.data, 20
        )
        chunked = kernels.csr_matmul(
            sa.indptr,
            sa.indices,
            sa.data,
            sb.indptr,
            sb.indices,
            sb.data,
            20,
            chunk_fanout=7,
        )
        for got, want in zip(chunked, single):
            np.testing.assert_array_equal(got, want)

    def test_chunked_masked_matches(self, rng):
        from repro.sparse import kernels

        A = random_dense(rng, 15, 15, density=0.5)
        sa = from_dense(A).to_csr()
        coo = sa.to_coo()
        mask_keys = coo.rows * 15 + coo.cols
        small = kernels.csr_matmul(
            sa.indptr, sa.indices, sa.data, sa.indptr, sa.indices, sa.data, 15,
            n_cols=15, mask_keys=mask_keys, chunk_fanout=5,
        )
        big = kernels.csr_matmul(
            sa.indptr, sa.indices, sa.data, sa.indptr, sa.indices, sa.data, 15,
            n_cols=15, mask_keys=mask_keys,
        )
        for got, want in zip(small, big):
            np.testing.assert_array_equal(got, want)

    def test_default_chunk_constant_sane(self):
        assert SPGEMM_CHUNK_FANOUT >= 1 << 20

    def test_hub_graph_triangles_bounded_memory(self):
        # Regression: a star-kron hub graph used to OOM the naive SpGEMM.
        from repro.design import PowerLawDesign

        design = PowerLawDesign([4, 625])
        graph = design.realize()
        assert graph.num_triangles() == 0
