"""Unit tests for exact Kronecker spectra (design.spectrum)."""

import math

import numpy as np
import pytest

from repro.design import (
    PowerLawDesign,
    Spectrum,
    design_spectrum,
    edge_count_from_spectrum,
    star_spectrum,
    triangle_count_from_spectrum,
    triangle_count_raw,
)
from repro.errors import DesignError
from repro.graphs import SelfLoop, star_adjacency


class TestSpectrumClass:
    def test_from_values_merges(self):
        s = Spectrum.from_values([2.0, 2.0, -1.0])
        assert s.pairs == ((2.0, 2), (-1.0, 1))

    def test_dimension(self):
        assert Spectrum(((3.0, 2), (0.0, 5))).dimension == 7

    def test_moments(self):
        s = Spectrum(((2.0, 1), (-2.0, 1)))
        assert s.moment(2) == pytest.approx(8.0)
        assert s.moment(3) == pytest.approx(0.0)

    def test_spectral_radius(self):
        assert Spectrum(((1.0, 1), (-3.0, 2))).spectral_radius == 3.0

    def test_rejects_zero_multiplicity(self):
        with pytest.raises(DesignError):
            Spectrum(((1.0, 0),))

    def test_kron_pairs_products(self):
        a = Spectrum(((2.0, 1), (-2.0, 1)))
        b = Spectrum(((3.0, 1), (0.0, 2)))
        c = a.kron(b)
        assert c.eigenvalue_counts() == {6.0: 1, 0.0: 4, -6.0: 1}

    def test_kron_dimension_multiplies(self):
        a = star_spectrum(3)
        b = star_spectrum(5, "center")
        assert a.kron(b).dimension == a.dimension * b.dimension


class TestStarSpectrum:
    @pytest.mark.parametrize("m_hat", [1, 2, 3, 5, 9, 16])
    @pytest.mark.parametrize("loop", list(SelfLoop), ids=lambda l: l.value)
    def test_matches_dense_eigensolver(self, m_hat, loop):
        spectrum = star_spectrum(m_hat, loop)
        dense = star_adjacency(m_hat, loop).to_dense().astype(np.float64)
        expected = sorted(np.linalg.eigvalsh(dense), reverse=True)
        got = sorted(
            (v for v, m in spectrum.pairs for _ in range(m)), reverse=True
        )
        assert np.allclose(got, expected, atol=1e-8), (m_hat, loop)

    def test_plain_closed_form(self):
        s = star_spectrum(9)
        assert s.eigenvalue_counts() == {3.0: 1, 0.0: 8, -3.0: 1}

    def test_center_loop_roots(self):
        s = star_spectrum(6, "center")
        disc = math.sqrt(25)
        assert (1 + disc) / 2 in dict(s.pairs)
        assert dict(s.pairs)[(1 + disc) / 2] == 1

    def test_rejects_bad_size(self):
        with pytest.raises(DesignError):
            star_spectrum(0)


class TestDesignSpectrum:
    def test_dimension_is_vertex_count(self):
        d = PowerLawDesign([3, 4, 5])
        assert design_spectrum(d).dimension == d.num_vertices

    def test_plain_chain_has_three_distinct_eigenvalues(self):
        # Nonzero eigenvalues need a nonzero pick from EVERY factor, so a
        # plain star chain has exactly +-sqrt(prod m̂) and 0.
        d = PowerLawDesign([3, 4, 5, 9])
        s = design_spectrum(d)
        radius = math.sqrt(3 * 4 * 5 * 9)
        assert len(s) == 3
        counts = s.eigenvalue_counts()
        assert counts[0.0] == d.num_vertices - 2**4
        assert abs(s.spectral_radius - radius) < 1e-9

    def test_second_moment_is_raw_nnz(self):
        for loop in (None, "center", "leaf"):
            d = PowerLawDesign([3, 4, 5], loop)
            s = design_spectrum(d)
            assert edge_count_from_spectrum(s) == pytest.approx(d.raw_nnz, rel=1e-9)

    def test_third_moment_is_raw_triangle_product(self):
        for loop in (None, "center", "leaf"):
            d = PowerLawDesign([3, 4, 2], loop)
            s = design_spectrum(d)
            raw = triangle_count_raw(d.stars)
            assert s.moment(3) == pytest.approx(raw, rel=1e-9, abs=1e-6)
            assert triangle_count_from_spectrum(s) == pytest.approx(raw / 6, abs=1e-6)

    def test_matches_dense_eigensolver_on_product(self):
        d = PowerLawDesign([3, 2], "center")
        s = design_spectrum(d)
        dense = d.to_chain().materialize().to_dense().astype(np.float64)
        expected = sorted(np.linalg.eigvalsh(dense), reverse=True)
        got = sorted((v for v, m in s.pairs for _ in range(m)), reverse=True)
        assert np.allclose(got, expected, atol=1e-8)

    def test_fig5_scale_spectrum_is_cheap(self):
        d = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256, 625])
        s = design_spectrum(d)
        assert s.dimension == 6_997_208_649_600
        assert len(s) == 3
        assert s.spectral_radius == pytest.approx(
            math.sqrt(3 * 4 * 5 * 9 * 16 * 25 * 81 * 256 * 625)
        )
