"""Unit tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.graphs import star_adjacency
from repro.io.mtx import read_mtx, roundtrip_check, write_mtx
from repro.sparse import from_dense
from tests.conftest import random_dense


class TestWriteRead:
    def test_general_integer_roundtrip(self, tmp_path, rng):
        m = from_dense(random_dense(rng, 7, 5))
        path = tmp_path / "g.mtx"
        count = write_mtx(path, m)
        assert count == m.nnz
        assert read_mtx(path).equal(m)

    def test_symmetric_roundtrip_halves_storage(self, tmp_path):
        m = star_adjacency(6)
        path = tmp_path / "s.mtx"
        count = write_mtx(path, m, symmetric=True)
        assert count == m.nnz // 2
        assert read_mtx(path).equal(m)

    def test_symmetric_with_diagonal(self, tmp_path):
        m = star_adjacency(4, "center")
        path = tmp_path / "d.mtx"
        write_mtx(path, m, symmetric=True)
        assert read_mtx(path).equal(m)

    def test_symmetric_flag_validated(self, tmp_path, rng):
        from repro.sparse import from_triples

        asym = from_triples((3, 3), [0], [1], [1])
        with pytest.raises(IOFormatError):
            write_mtx(tmp_path / "x.mtx", asym, symmetric=True)

    def test_real_values(self, tmp_path):
        m = from_dense(np.array([[0.5, 0.0], [0.0, 1.25]]))
        path = tmp_path / "r.mtx"
        write_mtx(path, m)
        out = read_mtx(path)
        assert out.equal(m)
        assert np.issubdtype(out.dtype, np.floating)

    def test_roundtrip_check_helper(self, tmp_path):
        assert roundtrip_check(star_adjacency(5), tmp_path / "rt.mtx")


class TestReadForeignFiles:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 2\n2 1\n"
        )
        m = read_mtx(path)
        assert m.get(0, 1) == 1 and m.get(1, 0) == 1

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "% a comment\n% another\n"
            "2 2 1\n1 1 7\n"
        )
        assert read_mtx(path).get(0, 0) == 7

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a header\n1 1 0\n")
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "cx.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_unsupported_symmetry(self, tmp_path):
        path = tmp_path / "sk.mtx"
        path.write_text("%%MatrixMarket matrix coordinate integer skew-symmetric\n1 1 0\n")
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_malformed_size_line(self, tmp_path):
        path = tmp_path / "sz.mtx"
        path.write_text("%%MatrixMarket matrix coordinate integer general\nx y z\n")
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "en.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1\n"
        )
        with pytest.raises(IOFormatError):
            read_mtx(path)
