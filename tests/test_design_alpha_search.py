"""Tests for alpha-targeted design search and the α≈1 structural fact."""

import pytest

from repro.design.search import design_for_alpha
from repro.errors import DesignSearchError


class TestDesignForAlpha:
    def test_alpha_one_succeeds(self):
        d = design_for_alpha(1.0, 10**5, rel_tol=1.0, alpha_tol=0.1)
        fit, _ = d.degree_distribution.fit_alpha()
        assert abs(fit - 1.0) <= 0.1
        assert 5 * 10**4 <= d.num_edges <= 2 * 10**5

    def test_near_one_succeeds(self):
        d = design_for_alpha(1.05, 10**4, rel_tol=1.0, alpha_tol=0.15)
        fit, _ = d.degree_distribution.fit_alpha()
        assert abs(fit - 1.05) <= 0.15

    def test_repeated_sizes_allowed(self):
        # The multiset search may legitimately return repeated sizes.
        d = design_for_alpha(1.0, 10**5, rel_tol=0.2, alpha_tol=0.05)
        assert d.num_edges > 0  # just structural sanity; repeats legal

    def test_far_from_one_raises_structural_limit(self):
        # Star products pin the fitted slope near 1; α = 2 is not
        # expressible and the search must say so rather than mislead.
        with pytest.raises(DesignSearchError):
            design_for_alpha(2.0, 10**5, rel_tol=1.0, alpha_tol=0.2)

    def test_rejects_bad_targets(self):
        with pytest.raises(DesignSearchError):
            design_for_alpha(1.0, 1)
        with pytest.raises(DesignSearchError):
            design_for_alpha(-1.0, 100)

    def test_loop_policy_passes_through(self):
        d = design_for_alpha(1.0, 10**4, self_loop="center", rel_tol=1.0, alpha_tol=0.2)
        assert d.num_triangles > 0

    def test_slope_pinning_is_real(self):
        # Direct check of the structural fact the docstring states:
        # even heavy repetition leaves the fitted slope within ~0.1 of 1.
        from repro.design import PowerLawDesign

        for sizes in ([5] * 5, [3, 3, 3, 9, 9], [4, 4, 16, 16]):
            fit, _ = PowerLawDesign(sizes).degree_distribution.fit_alpha()
            assert abs(fit - 1.0) < 0.12, (sizes, fit)
