"""Unit tests for resource estimation, spy plots, and matrix powers."""

import numpy as np
import pytest

from repro.design import (
    PowerLawDesign,
    estimate_resources,
    recommend_cluster,
)
from repro.design.estimate import _human
from repro.errors import DesignError, ShapeError
from repro.analysis import spy, spy_with_caption
from repro.graphs import star_adjacency
from repro.sparse import eye, from_dense, matrix_power, zeros
from tests.conftest import random_dense


class TestResourceEstimate:
    def test_byte_math(self):
        d = PowerLawDesign([5, 3])
        est = estimate_resources(d)
        assert est.coo_bytes == 60 * 24
        assert est.csr_bytes == 60 * 16
        assert est.indptr_bytes == 8 * 25

    def test_fits_in(self):
        est = estimate_resources(PowerLawDesign([5, 3]))
        assert est.fits_in(10_000)
        assert not est.fits_in(10)

    def test_trillion_edge_footprint(self):
        d = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256], "center")
        est = estimate_resources(d)
        assert est.coo_bytes == 1_853_002_140_758 * 24  # ~40 TiB
        assert "TiB" in est.to_text()

    def test_human_units(self):
        assert _human(512) == "512 B"
        assert _human(1536) == "1.5 KiB"
        assert "GiB" in _human(3 * 2**30)


class TestClusterRecommendation:
    def test_small_design_one_rank(self):
        rec = recommend_cluster(PowerLawDesign([3, 4, 5]), 2**30)
        assert rec.n_ranks == 1

    def test_trillion_edge_needs_paper_scale_cluster(self):
        d = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256], "center")
        rec = recommend_cluster(d, 2 * 2**30)
        # Same order of magnitude as the paper's 41,472 cores.
        assert 5_000 <= rec.n_ranks <= 100_000
        assert rec.per_rank_bytes <= 2 * 2**30

    def test_per_rank_budget_respected(self):
        d = PowerLawDesign([3, 4, 5, 9, 16])
        for budget in (2**20, 2**24, 2**30):
            rec = recommend_cluster(d, budget)
            assert rec.per_rank_bytes <= budget

    def test_infeasible_budget_raises(self):
        with pytest.raises(DesignError):
            recommend_cluster(PowerLawDesign([3, 4, 5]), 100)

    def test_budget_below_one_entry_raises(self):
        with pytest.raises(DesignError):
            recommend_cluster(PowerLawDesign([3, 4]), 8)


class TestSpy:
    def test_small_matrix_exact_cells(self):
        art = spy(eye(4))
        lines = art.split("\n")
        assert len(lines) == 2
        assert lines[0][0] == "▚"  # (0,0) and (1,1) diagonal in one cell
        assert lines[1][1] == "▚"
        assert lines[0][1] == " " and lines[1][0] == " "

    def test_empty_matrix_blank(self):
        art = spy(zeros((4, 4)))
        assert set(art.replace("\n", "")) <= {" "}

    def test_large_matrix_binned_to_width(self):
        big = star_adjacency(999)
        art = spy(big, max_width=16)
        lines = art.split("\n")
        assert max(len(line) for line in lines) <= 16

    def test_dense_matrix_full_blocks(self):
        art = spy(from_dense(np.ones((4, 4), dtype=np.int64)))
        assert set(art.replace("\n", "")) == {"█"}

    def test_caption_and_footer(self):
        text = spy_with_caption(eye(3), "identity")
        assert text.startswith("identity\n")
        assert "nnz 3" in text

    def test_rejects_empty_shape(self):
        with pytest.raises(ShapeError):
            spy(zeros((0, 5)))

    def test_fig1_structure_has_two_blocks(self):
        from repro.kron import component_permutation, kron

        c = kron(star_adjacency(5), star_adjacency(3))
        p = c.permuted(component_permutation(c))
        art = spy(p)
        lines = art.split("\n")
        # Block-diagonal: the first row's tail and the last row's head
        # (the off-diagonal corners) are empty.
        assert set(lines[0][-3:]) <= {" "}
        assert set(lines[-1][:3]) <= {" "}


class TestMatrixPower:
    def test_power_zero_is_identity(self):
        m = from_dense(np.array([[0, 1], [1, 0]], dtype=np.int64))
        assert matrix_power(m, 0).equal(eye(2))

    def test_power_one_is_self(self, rng):
        m = from_dense(random_dense(rng, 5, 5))
        assert matrix_power(m, 1).equal(m)

    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_matches_dense_power(self, rng, k):
        A = random_dense(rng, 4, 4) % 2  # keep entries small
        got = matrix_power(from_dense(A), k).to_dense()
        np.testing.assert_array_equal(got, np.linalg.matrix_power(A, k))

    def test_walk_counts_match_spectrum_moment(self):
        # trace(A^k) == sum lambda^k — spectrum as independent witness.
        from repro.design import star_spectrum
        from repro.sparse import trace

        a = star_adjacency(4, "center")
        spectrum = star_spectrum(4, "center")
        for k in (1, 2, 3, 4):
            assert trace(matrix_power(a, k)) == pytest.approx(
                spectrum.moment(k), rel=1e-9
            )

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            matrix_power(zeros((2, 3)), 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            matrix_power(eye(2), -1)
