"""Tests for the Chung-Lu / R-MAT triangle-participation baselines."""

import pytest

from repro.baselines import (
    BASELINE_CHOICES,
    baseline_graph,
    baseline_triangle_participation,
    compare_baseline_triangles,
)
from repro.design import PowerLawDesign
from repro.errors import GenerationError


@pytest.fixture
def design():
    return PowerLawDesign([3, 4, 5], "center")


class TestBaselineGraph:
    def test_chung_lu_gets_the_exact_degree_sequence(self, design):
        graph = baseline_graph("chung-lu", design, seed=1)
        assert graph.adjacency.shape[0] == design.num_vertices

    def test_rmat_matches_scale_and_edge_budget(self, design):
        graph = baseline_graph("rmat", design, seed=1)
        # Scale 7 covers the 120-vertex design.
        assert graph.adjacency.shape[0] == 128

    def test_unknown_kind_raises(self, design):
        with pytest.raises(GenerationError):
            baseline_graph("preferential-banana", design)

    @pytest.mark.parametrize("kind", BASELINE_CHOICES)
    def test_deterministic_given_seed(self, design, kind):
        a = baseline_graph(kind, design, seed=7).adjacency
        b = baseline_graph(kind, design, seed=7).adjacency
        assert (a.rows == b.rows).all() and (a.cols == b.cols).all()

    @pytest.mark.parametrize("kind", BASELINE_CHOICES)
    def test_seed_changes_the_sample(self, design, kind):
        a = baseline_graph(kind, design, seed=0).adjacency
        b = baseline_graph(kind, design, seed=1).adjacency
        assert len(a.rows) != len(b.rows) or not (
            (a.rows == b.rows).all() and (a.cols == b.cols).all()
        )


class TestParticipation:
    @pytest.mark.parametrize("kind", BASELINE_CHOICES)
    def test_measurement_is_sane(self, design, kind):
        result = baseline_triangle_participation(kind, design, seed=1)
        assert result.num_triangles >= 0
        assert 0.0 <= result.edge_participation_fraction <= 1.0

    def test_recorded_experiment_values(self, design):
        # The EXPERIMENTS.md comparison rows; deterministic given seed.
        cl = baseline_triangle_participation("chung-lu", design, seed=1)
        rm = baseline_triangle_participation("rmat", design, seed=1)
        assert cl.num_triangles == 203
        assert rm.num_triangles == 258

    @pytest.mark.parametrize("kind", BASELINE_CHOICES)
    def test_comparison_verdict(self, design, kind):
        comparison = compare_baseline_triangles(kind, design, seed=1)
        # Neither baseline hits the designed 287 exactly, but both land
        # within the 0.5 deficiency threshold at this density.
        assert comparison.triangle_ratio != pytest.approx(1.0)
        assert not comparison.deficient
