"""Tests for CCDF series and deep validation mode."""

import pytest

from repro.analysis import ccdf_series
from repro.design import PowerLawDesign
from repro.validate import validate_design


class TestCCDF:
    def test_starts_at_probability_one(self):
        s = ccdf_series(PowerLawDesign([3, 4, 5]).degree_distribution)
        assert s.log10_count[0] == pytest.approx(0.0)

    def test_monotone_nonincreasing(self):
        s = ccdf_series(PowerLawDesign([3, 4, 5, 9]).degree_distribution)
        assert all(a >= b - 1e-12 for a, b in zip(s.log10_count, s.log10_count[1:]))

    def test_last_point_is_max_degree_share(self):
        import math

        d = PowerLawDesign([3, 4])
        s = ccdf_series(d.degree_distribution)
        # P(deg >= dmax) = count(dmax)/vertices = 1/20.
        assert s.log10_count[-1] == pytest.approx(math.log10(1 / 20))

    def test_works_on_plain_mapping(self):
        s = ccdf_series({1: 9, 10: 1})
        assert len(s) == 2

    def test_extreme_scale(self):
        d = PowerLawDesign(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
        )
        s = ccdf_series(d.degree_distribution)
        assert len(s) == len(d.degree_distribution)
        assert s.log10_count[0] == pytest.approx(0.0)


class TestDeepValidation:
    @pytest.mark.parametrize("loop", [None, "center", "leaf"])
    def test_deep_passes_on_correct_graphs(self, loop):
        report = validate_design(PowerLawDesign([3, 4, 2], loop), deep=True)
        assert report.passed
        assert report.wedges_match is True
        assert report.joint_match is True
        assert "joint degree distribution match: True" in report.to_text()

    def test_shallow_leaves_deep_fields_none(self):
        report = validate_design(PowerLawDesign([3, 4]))
        assert report.wedges_match is None
        assert report.joint_match is None
        assert "joint" not in report.to_text()

    def test_deep_catches_wrong_graph(self):
        design = PowerLawDesign([3, 4], "center")
        other = PowerLawDesign([3, 4], "leaf").realize()
        report = validate_design(design, graph=other, deep=True)
        assert not report.passed
        assert report.joint_match is False

    def test_joint_skipped_when_too_rich(self):
        design = PowerLawDesign(
            [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
        )
        # Only the joint computation is exercised (no realization at
        # this scale) — call the private hook directly.
        from repro.validate.report import _deep_joint_match

        assert _deep_joint_match(design, PowerLawDesign([3]).realize()) is None
