"""Unit tests for the BA baseline, comparison metrics, and Graph500 I/O."""

import numpy as np
import pytest

from repro.analysis import (
    distribution_report,
    fit_power_law,
    ks_distance_log,
    total_variation_distance,
)
from repro.baselines import barabasi_albert_graph
from repro.design import DegreeDistribution, PowerLawDesign
from repro.errors import DesignError, GenerationError, IOFormatError
from repro.io import read_graph500_edges, write_graph500_edges
from repro.graphs import star_adjacency
from repro.sparse import from_triples


class TestBarabasiAlbert:
    def test_edge_count(self, rng):
        n, m = 200, 3
        g = barabasi_albert_graph(n, m, rng=rng)
        # star seed: m edges; each later vertex adds m edges; x2 symmetric.
        expected = 2 * (m + (n - m - 1) * m)
        assert g.num_edges == expected

    def test_simple_graph(self, rng):
        g = barabasi_albert_graph(100, 2, rng=rng)
        assert g.num_self_loops() == 0
        assert g.is_symmetric()
        assert set(np.unique(g.adjacency.vals)) == {1}

    def test_no_empty_vertices(self, rng):
        g = barabasi_albert_graph(150, 2, rng=rng)
        assert g.num_empty_vertices() == 0

    def test_heavy_tail_emerges(self, rng):
        g = barabasi_albert_graph(400, 2, rng=rng)
        degrees = g.degree_vector()
        # Preferential attachment: max degree far above the median.
        assert degrees.max() > 5 * np.median(degrees)

    def test_fitted_alpha_is_plausibly_power_law(self, rng):
        g = barabasi_albert_graph(600, 3, rng=rng)
        fit = fit_power_law(g.degree_distribution())
        assert 0.5 < fit.alpha < 3.5

    def test_parameter_validation(self, rng):
        with pytest.raises(GenerationError):
            barabasi_albert_graph(10, 0, rng=rng)
        with pytest.raises(GenerationError):
            barabasi_albert_graph(3, 3, rng=rng)

    def test_deterministic_with_seed(self):
        a = barabasi_albert_graph(80, 2, rng=np.random.default_rng(1))
        b = barabasi_albert_graph(80, 2, rng=np.random.default_rng(1))
        assert a == b


class TestComparisonMetrics:
    def test_identical_distributions_zero(self):
        d = PowerLawDesign([3, 4, 5]).degree_distribution
        assert total_variation_distance(d, d) == 0.0
        assert ks_distance_log(d, d) == 0.0

    def test_disjoint_supports_tv_one(self):
        a = DegreeDistribution({1: 10})
        b = DegreeDistribution({2: 10})
        assert total_variation_distance(a, b) == 1.0
        assert ks_distance_log(a, b) == 1.0

    def test_scale_invariance(self):
        # Same shape at different vertex counts compares as identical.
        a = DegreeDistribution({1: 3, 2: 1})
        b = DegreeDistribution({1: 300, 2: 100})
        assert total_variation_distance(a, b) == 0.0

    def test_symmetry(self):
        a = PowerLawDesign([3, 4]).degree_distribution
        b = PowerLawDesign([5, 3]).degree_distribution
        assert total_variation_distance(a, b) == total_variation_distance(b, a)
        assert ks_distance_log(a, b) == ks_distance_log(b, a)

    def test_bounds(self):
        a = PowerLawDesign([3, 4, 5]).degree_distribution
        b = PowerLawDesign([9, 16]).degree_distribution
        tv = total_variation_distance(a, b)
        ks = ks_distance_log(a, b)
        assert 0 <= ks <= tv <= 1

    def test_empty_rejected(self):
        with pytest.raises(DesignError):
            total_variation_distance(DegreeDistribution(), DegreeDistribution({1: 1}))

    def test_design_vs_ba_report(self, rng):
        design = PowerLawDesign([3, 4, 5, 9])
        ba = barabasi_albert_graph(design.num_vertices, 2, rng=rng)
        report = distribution_report(
            design.degree_distribution, ba.degree_distribution()
        )
        assert 0 < report.total_variation <= 1
        assert "TV distance" in report.to_text()

    def test_works_at_extreme_scale(self):
        # Exact rational arithmetic: Fig-5 vs Fig-6 comparison is fine.
        a = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256, 625]).degree_distribution
        b = PowerLawDesign(
            [3, 4, 5, 9, 16, 25, 81, 256, 625], "center"
        ).degree_distribution
        tv = total_variation_distance(a, b)
        assert 0 < tv < 1


class TestGraph500IO:
    def test_roundtrip(self, tmp_path):
        m = star_adjacency(6)
        path = tmp_path / "edges.g500"
        count = write_graph500_edges(path, m)
        assert count == m.nnz
        assert read_graph500_edges(path, m.shape).equal(m)

    def test_rejects_weighted(self, tmp_path):
        weighted = from_triples((2, 2), [0], [1], [7])
        with pytest.raises(IOFormatError):
            write_graph500_edges(tmp_path / "w.g500", weighted)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "bad.g500"
        path.write_bytes(b"\x00" * 12)  # 1.5 int64 words
        with pytest.raises(IOFormatError):
            read_graph500_edges(path, (2, 2))

    def test_empty_graph(self, tmp_path):
        from repro.sparse import zeros

        path = tmp_path / "empty.g500"
        write_graph500_edges(path, zeros((3, 3)))
        assert read_graph500_edges(path, (3, 3)).nnz == 0

    def test_little_endian_layout(self, tmp_path):
        path = tmp_path / "layout.g500"
        write_graph500_edges(path, from_triples((300, 300), [258], [1], [1]))
        raw = path.read_bytes()
        assert raw[:8] == (258).to_bytes(8, "little")
        assert raw[8:16] == (1).to_bytes(8, "little")
