"""Smoke-run every example script end to end.

Each example is a documented user journey; this keeps them executable
as the library evolves.  They run as subprocesses with the repo's
Python, asserting clean exits and key output markers.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "VALIDATION PASSED",
    "design_to_spec.py": "realized and validated: True",
    "parallel_generation.py": "reassembled union matches the direct product: True",
    "extreme_scale_analysis.py": "lazy queries on the 10^30-edge product",
    "compare_with_rmat.py": "knew every property in advance",
    "spectral_and_analytics.py": "agree with the closed forms",
    "graphblas_pipeline.py": "pipeline complete",
    "paper_figures.py": "Figure 2",
}


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.parametrize("name,marker", sorted(CASES.items()))
def test_example_runs_clean(name, marker):
    output = _run(name)
    assert marker in output, f"{name}: expected {marker!r} in output"


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES), (
        "examples directory and smoke-test table drifted apart: "
        f"{on_disk.symmetric_difference(set(CASES))}"
    )
