"""Unit tests for matrix-free Kronecker matvec and power iteration."""

import numpy as np
import pytest

from repro.design import PowerLawDesign, design_spectrum
from repro.errors import ShapeError
from repro.graphs import star_adjacency
from repro.kron import (
    KroneckerChain,
    chain_matvec,
    leading_eigenvector_factors,
    power_iteration,
    spectral_radius_estimate,
)


def chain_mixed():
    return KroneckerChain(
        [star_adjacency(3), star_adjacency(4, "center"), star_adjacency(2, "leaf")]
    )


class TestChainMatvec:
    def test_matches_dense(self, rng):
        chain = chain_mixed()
        dense = chain.materialize().to_dense().astype(np.float64)
        for _ in range(10):
            x = rng.standard_normal(chain.num_vertices)
            np.testing.assert_allclose(chain_matvec(chain, x), dense @ x, atol=1e-9)

    def test_single_factor(self, rng):
        chain = KroneckerChain([star_adjacency(5)])
        dense = chain.materialize().to_dense().astype(np.float64)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(chain_matvec(chain, x), dense @ x)

    def test_linearity(self, rng):
        chain = chain_mixed()
        x = rng.standard_normal(chain.num_vertices)
        y = rng.standard_normal(chain.num_vertices)
        lhs = chain_matvec(chain, 2 * x + 3 * y)
        rhs = 2 * chain_matvec(chain, x) + 3 * chain_matvec(chain, y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            chain_matvec(chain_mixed(), np.zeros(3))

    def test_memory_guard(self):
        huge = KroneckerChain([star_adjacency(999)] * 4)
        with pytest.raises(MemoryError):
            chain_matvec(huge, np.zeros(1))


class TestPowerIteration:
    def test_radius_on_mixed_chain(self):
        chain = chain_mixed()
        dense = chain.materialize().to_dense().astype(np.float64)
        expected = max(abs(np.linalg.eigvalsh(dense)))
        value, vector, iterations = power_iteration(chain)
        assert value == pytest.approx(expected, rel=1e-6)
        assert iterations >= 1
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_plain_star_chain_radius_closed_form(self):
        chain = KroneckerChain([star_adjacency(m) for m in (3, 4, 5)])
        assert spectral_radius_estimate(chain) == pytest.approx(np.sqrt(60), rel=1e-6)

    def test_agrees_with_exact_spectrum(self):
        design = PowerLawDesign([3, 4, 2], "center")
        exact = design_spectrum(design).spectral_radius
        assert spectral_radius_estimate(design.to_chain()) == pytest.approx(
            exact, rel=1e-6
        )

    def test_dominant_vector_is_a2_eigenvector(self):
        chain = chain_mixed()
        value, vector, _ = power_iteration(chain, tol=1e-14, max_iterations=2000)
        a2v = chain_matvec(chain, chain_matvec(chain, vector))
        np.testing.assert_allclose(a2v, value**2 * vector, atol=1e-5)


class TestFactorEigenvectors:
    def test_kron_of_factor_vectors_is_eigenvector(self):
        chain = KroneckerChain([star_adjacency(3), star_adjacency(4, "center")])
        factors = leading_eigenvector_factors(chain)
        v = factors[0]
        for f in factors[1:]:
            v = np.kron(v, f)
        dense = chain.materialize().to_dense().astype(np.float64)
        av = dense @ v
        # av = lambda v for a single lambda.
        ratio = av[np.abs(v) > 1e-9] / v[np.abs(v) > 1e-9]
        assert np.allclose(ratio, ratio[0], atol=1e-8)

    def test_requires_symmetric(self):
        from repro.errors import DesignError
        from repro.sparse import from_triples

        asym = from_triples((2, 2), [0], [1], [1])
        with pytest.raises(DesignError):
            leading_eigenvector_factors(KroneckerChain([asym]))
