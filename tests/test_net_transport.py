"""Transports and the collection protocol's ordering enforcement.

Endpoint semantics (order, timeout, close) are asserted per transport
through the same parametrized suite, so ``inproc`` and ``socket`` are
interchangeable by construction; the MPI transport is asserted to *gate*
cleanly — a typed error without ``mpi4py``, a skip (not a failure) for
the tests that need a real launcher.

The :class:`~repro.net.TileCollector` tests drive the protocol frame by
frame over pre-filled inproc queues, proving each contract violation
(wrong first frame, digest mismatch, out-of-order rank or tile, stats
mismatch) raises its promised typed error and aborts the inner sink.
"""

import threading
import time

import pytest

from repro.design import PowerLawDesign
from repro.engine import AssemblySink, plan_from_design
from repro.errors import (
    FrameSequenceError,
    GenerationError,
    HandshakeError,
    TransportClosedError,
    TransportError,
    TransportTimeoutError,
    TransportUnavailableError,
)
from repro.net import (
    FRAME_COMMIT,
    FRAME_OPEN,
    FRAME_TILE,
    InProcessTransport,
    TileCollector,
    TileTransport,
    encode_control_payload,
    encode_frame,
    list_transports,
    local_pair,
    mpi_available,
    transport_available,
)

DESIGN = PowerLawDesign([3, 4, 5], "center")

#: Transports a single test process can exercise.
LOCAL_TRANSPORTS = ["inproc", "socket"]


@pytest.fixture(params=LOCAL_TRANSPORTS)
def endpoint_pair(request):
    a, b = local_pair(request.param)
    yield a, b
    a.close()
    b.close()


class TestEndpointSemantics:
    def test_frames_arrive_in_order_both_directions(self, endpoint_pair):
        a, b = endpoint_pair
        frames = [encode_frame(FRAME_TILE, bytes([i]) * i) for i in range(1, 6)]
        for f in frames:
            a.send_frame(f)
        assert [b.recv_frame(timeout=5.0) for _ in frames] == frames
        b.send_frame(frames[0])
        assert a.recv_frame(timeout=5.0) == frames[0]

    def test_large_frame_survives(self, endpoint_pair):
        a, b = endpoint_pair
        big = encode_frame(FRAME_TILE, b"\xab" * (2 << 20))
        a.send_frame(big)
        assert b.recv_frame(timeout=10.0) == big

    def test_recv_timeout_is_typed(self, endpoint_pair):
        _, b = endpoint_pair
        t0 = time.monotonic()
        with pytest.raises(TransportTimeoutError):
            b.recv_frame(timeout=0.05)
        assert time.monotonic() - t0 < 5.0

    def test_close_unblocks_peer_recv(self, endpoint_pair):
        a, b = endpoint_pair
        errors = []

        def blocked_recv():
            try:
                b.recv_frame(timeout=10.0)
            except TransportError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked_recv)
        t.start()
        time.sleep(0.05)
        a.close()
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], TransportClosedError)

    def test_send_after_close_is_typed(self, endpoint_pair):
        a, _ = endpoint_pair
        a.close()
        with pytest.raises(TransportClosedError):
            a.send_frame(b"x")

    def test_close_is_idempotent(self, endpoint_pair):
        a, _ = endpoint_pair
        a.close()
        a.close()  # must not raise

    def test_peer_closure_reported_repeatedly(self, endpoint_pair):
        a, b = endpoint_pair
        a.close()
        for _ in range(3):
            with pytest.raises(TransportClosedError):
                b.recv_frame(timeout=1.0)

    def test_satisfies_protocol(self, endpoint_pair):
        a, b = endpoint_pair
        assert isinstance(a, TileTransport)
        assert isinstance(b, TileTransport)


class TestSocketSpecifics:
    def test_insane_length_prefix_is_corruption_not_allocation(self):
        import struct

        from repro.net.codec import MAX_FRAME_BYTES

        a, b = local_pair("socket")
        try:
            a._sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError):
                b.recv_frame(timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_peer_death_mid_frame_is_closed_not_garbage(self):
        import struct

        a, b = local_pair("socket")
        try:
            a._sock.sendall(struct.pack(">I", 100) + b"only-part")
            a.close()
            with pytest.raises(TransportClosedError):
                b.recv_frame(timeout=5.0)
        finally:
            b.close()


class TestRegistry:
    def test_names(self):
        assert list_transports() == ["inproc", "socket", "mpi"]

    def test_local_transports_always_available(self):
        assert transport_available("inproc")
        assert transport_available("socket")

    def test_mpi_availability_tracks_mpi4py(self):
        assert transport_available("mpi") == mpi_available()

    def test_unknown_name(self):
        assert not transport_available("carrier-pigeon")
        with pytest.raises(TransportError, match="unknown transport"):
            local_pair("carrier-pigeon")

    def test_mpi_cannot_form_a_local_pair(self):
        with pytest.raises(TransportUnavailableError, match="mpiexec"):
            local_pair("mpi")


class TestMPIGating:
    @pytest.mark.skipif(mpi_available(), reason="mpi4py is installed")
    def test_constructing_without_mpi4py_is_typed_not_importerror(self):
        from repro.net import MPITransport

        with pytest.raises(TransportUnavailableError, match="mpi4py"):
            MPITransport(peer=0)

    def test_module_imports_without_mpi4py(self):
        # The gate is at construction, never at import.
        import repro.net.mpi  # noqa: F401

    @pytest.mark.skipif(
        not mpi_available(), reason="mpi4py not installed (expected in CI)"
    )
    def test_single_process_world_is_refused(self):
        from repro.net import MPITransport

        with pytest.raises(TransportUnavailableError, match="2 ranks"):
            MPITransport(peer=0)


# -- collector protocol enforcement -------------------------------------------
def make_plan(n_ranks=3, seed=11):
    return plan_from_design(DESIGN, n_ranks, scramble_seed=seed)


def preloaded_collector(plan, frames, recv_timeout_s=1.0):
    """A collector whose producer already sent ``frames`` then closed —
    lets protocol-violation tests run synchronously, no threads."""
    producer, collector_end = InProcessTransport.pair()
    for f in frames:
        producer.send_frame(f)
    producer.close()
    sink = AssemblySink()
    return (
        TileCollector(plan, sink, collector_end, recv_timeout_s=recv_timeout_s),
        sink,
    )


def open_frame(plan):
    digest = plan.fingerprint.get("digest")
    return encode_frame(
        FRAME_OPEN,
        encode_control_payload({"digest": digest, "n_ranks": plan.n_ranks}),
    )


class TestCollectorEnforcesProtocol:
    def test_first_frame_must_be_open(self):
        plan = make_plan()
        collector, _ = preloaded_collector(
            plan, [encode_frame(FRAME_TILE, b"", rank=0, tile_index=0)]
        )
        with pytest.raises(FrameSequenceError, match="start with an open"):
            collector.run()
        assert isinstance(collector.error, FrameSequenceError)

    def test_digest_mismatch_is_a_handshake_error(self):
        plan = make_plan(seed=11)
        other = make_plan(seed=12)
        collector, _ = preloaded_collector(plan, [open_frame(other)])
        with pytest.raises(HandshakeError, match="different run"):
            collector.run()

    def test_rank_count_mismatch_is_a_handshake_error(self):
        plan = make_plan()
        digest = plan.fingerprint.get("digest")
        bad_open = encode_frame(
            FRAME_OPEN,
            encode_control_payload(
                {"digest": digest, "n_ranks": plan.n_ranks + 1}
            ),
        )
        collector, _ = preloaded_collector(plan, [bad_open])
        with pytest.raises(HandshakeError, match="ranks"):
            collector.run()

    def test_commit_for_wrong_rank_is_out_of_order(self):
        plan = make_plan()
        frames = [
            open_frame(plan),
            encode_frame(
                FRAME_COMMIT,
                encode_control_payload({"nnz": 0, "tiles": 0}),
                rank=1,
            ),
        ]
        collector, _ = preloaded_collector(plan, frames)
        with pytest.raises(FrameSequenceError, match="rank 1"):
            collector.run()

    def test_tile_index_gap_detected(self):
        from repro.net import encode_tile_payload
        import numpy as np

        plan = make_plan()
        empty = np.zeros(0, dtype=np.int64)
        frames = [
            open_frame(plan),
            encode_frame(
                FRAME_TILE,
                encode_tile_payload(empty, empty, empty),
                rank=0,
                tile_index=1,  # index 0 never sent
            ),
        ]
        collector, _ = preloaded_collector(plan, frames)
        with pytest.raises(FrameSequenceError, match="tile index 1"):
            collector.run()

    def test_commit_stats_mismatch_detected(self):
        plan = make_plan()
        frames = [
            open_frame(plan),
            encode_frame(
                FRAME_COMMIT,
                # Declares a tile that never arrived.
                encode_control_payload({"nnz": 7, "tiles": 1}),
                rank=0,
            ),
        ]
        collector, _ = preloaded_collector(plan, frames)
        with pytest.raises(FrameSequenceError, match="declares"):
            collector.run()

    def test_producer_vanishing_mid_protocol_aborts_inner_sink(self):
        plan = make_plan()
        collector, sink = preloaded_collector(plan, [open_frame(plan)])
        with pytest.raises(TransportClosedError):
            collector.run()
        # The inner sink was torn down: committing now must refuse.
        with pytest.raises(GenerationError, match="aborted"):
            sink.finalize(plan, elapsed_s=0.0, skipped=())
