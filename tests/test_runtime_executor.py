"""Unit tests for :class:`repro.runtime.RankExecutor`.

All timing uses a deterministic fake clock; no test sleeps for real.
"""

import random

import pytest

from repro.errors import (
    FatalRankError,
    RetryExhaustedError,
    TransientRankError,
)
from repro.parallel import SerialBackend
from repro.runtime import (
    FailureInjector,
    MetricsRegistry,
    RankEvents,
    RankExecutor,
)
from repro.runtime.tracing import ListSink, Tracer


class FakeClock:
    """Manually advanced clock shared by the executor and the work fn."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_executor(clock=None, sleeps=None, **kwargs):
    clock = clock or FakeClock()
    sleeps = sleeps if sleeps is not None else []
    kwargs.setdefault("jitter", 0.0)
    executor = RankExecutor(
        SerialBackend(),
        clock=clock,
        sleep=sleeps.append,
        rng=random.Random(0),
        **kwargs,
    )
    return executor, clock, sleeps


class TestHappyPath:
    def test_results_in_item_order(self):
        executor, _, _ = make_executor()
        result = executor.run(lambda x: x * 10, [1, 2, 3])
        assert result.results == [10, 20, 30]
        assert result.total_retries == 0
        assert all(len(r.attempts) == 1 for r in result.reports)

    def test_elapsed_measured_with_fake_clock(self):
        executor, clock, _ = make_executor()

        def work(dt):
            clock.advance(dt)
            return dt

        result = executor.run(work, [0.5, 2.0])
        assert [r.elapsed_s for r in result.reports] == [0.5, 2.0]

    def test_empty_items(self):
        executor, _, _ = make_executor()
        result = executor.run(lambda x: x, [])
        assert result.results == [] and result.reports == []


class TestRetry:
    def test_transient_failure_retried_and_succeeds(self):
        executor, _, sleeps = make_executor(max_retries=2)
        injector = FailureInjector([1], fail_attempts=1)
        result = executor.run(lambda x: x, ["a", "b", "c"], injector=injector)
        assert result.results == ["a", "b", "c"]
        assert result.reports[1].retries == 1
        assert not result.reports[1].attempts[0].ok
        assert result.reports[1].attempts[1].ok
        assert len(sleeps) == 1

    def test_backoff_doubles_per_attempt(self):
        executor, _, sleeps = make_executor(
            max_retries=3, backoff_base_s=0.1, backoff_cap_s=10.0
        )
        injector = FailureInjector([0], fail_attempts=3)
        executor.run(lambda x: x, [1], injector=injector)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_backoff_respects_cap(self):
        executor, _, _ = make_executor(backoff_base_s=1.0, backoff_cap_s=1.5)
        assert executor.backoff_delay(5) == pytest.approx(1.5)

    def test_jitter_widens_delay(self):
        executor = RankExecutor(
            SerialBackend(),
            backoff_base_s=1.0,
            jitter=0.5,
            rng=random.Random(0),
        )
        delay = executor.backoff_delay(0)
        assert 1.0 <= delay <= 1.5

    def test_retry_budget_exhausted_raises(self):
        executor, _, _ = make_executor(max_retries=2)
        injector = FailureInjector([0], fail_attempts=10)
        with pytest.raises(RetryExhaustedError, match="retry budget 2 exhausted"):
            executor.run(lambda x: x, [1], injector=injector)

    def test_zero_retries_fails_fast(self):
        executor, _, sleeps = make_executor(max_retries=0)
        injector = FailureInjector([0])
        with pytest.raises(RetryExhaustedError):
            executor.run(lambda x: x, [1], injector=injector)
        assert sleeps == []

    def test_fatal_error_aborts_immediately(self):
        executor, _, sleeps = make_executor(max_retries=5)
        injector = FailureInjector([1], fatal=True)
        with pytest.raises(FatalRankError, match="rank 1 failed fatally"):
            executor.run(lambda x: x, [1, 2], injector=injector)
        assert sleeps == []

    def test_arbitrary_exception_is_transient(self):
        executor, _, _ = make_executor(max_retries=1)
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("boom")
            return x

        result = executor.run(flaky, [7])
        assert result.results == [7]
        assert "ValueError: boom" in result.reports[0].attempts[0].error

    def test_negative_retries_rejected(self):
        with pytest.raises(TransientRankError):
            RankExecutor(SerialBackend(), max_retries=-1)


class TestTimeout:
    def test_slow_rank_classified_as_timeout_and_retried(self):
        executor, clock, _ = make_executor(max_retries=1, rank_timeout_s=5.0)
        durations = iter([10.0, 1.0])  # first attempt too slow, retry fast

        def work(x):
            clock.advance(next(durations))
            return x

        result = executor.run(work, ["ok"])
        assert result.results == ["ok"]
        first, second = result.reports[0].attempts
        assert not first.ok and "RankTimeoutError" in first.error
        assert second.ok and second.elapsed_s == pytest.approx(1.0)

    def test_timeout_exhausts_budget(self):
        executor, clock, _ = make_executor(max_retries=1, rank_timeout_s=1.0)

        def slow(x):
            clock.advance(2.0)
            return x

        with pytest.raises(RetryExhaustedError):
            executor.run(slow, [1])

    def test_no_timeout_by_default(self):
        executor, clock, _ = make_executor()

        def slow(x):
            clock.advance(1e6)
            return x

        assert executor.run(slow, [1]).results == [1]

    def test_invalid_timeout_rejected(self):
        with pytest.raises(TransientRankError):
            RankExecutor(SerialBackend(), rank_timeout_s=0.0)


class TestStragglers:
    def _run_with_durations(self, durations, **kwargs):
        executor, clock, _ = make_executor(**kwargs)

        def work(dt):
            clock.advance(dt)
            return dt

        return executor.run(work, durations)

    def test_slow_rank_flagged(self):
        result = self._run_with_durations([1.0, 1.0, 1.0, 10.0], straggler_factor=3.0)
        assert result.stragglers == [3]
        assert result.reports[3].straggler

    def test_uniform_ranks_not_flagged(self):
        result = self._run_with_durations([1.0, 1.0, 1.0, 1.0])
        assert result.stragglers == []

    def test_single_rank_never_flagged(self):
        result = self._run_with_durations([5.0])
        assert result.stragglers == []

    def test_factor_controls_threshold(self):
        result = self._run_with_durations([1.0, 1.0, 2.5], straggler_factor=2.0)
        assert result.stragglers == [2]


class TestObservability:
    def test_events_fire_in_order(self):
        calls = []
        events = RankEvents(
            on_rank_start=lambda r, a: calls.append(("start", r, a)),
            on_rank_done=lambda r, e, a: calls.append(("done", r, a)),
            on_retry=lambda r, a, d, err: calls.append(("retry", r, a)),
        )
        executor, _, _ = make_executor(max_retries=1, events=events)
        injector = FailureInjector([0], fail_attempts=1)
        executor.run(lambda x: x, [1, 2], injector=injector)
        # Outcomes are processed in rank order within a round, so rank
        # 0's retry classification precedes rank 1's completion event.
        assert calls == [
            ("start", 0, 0),
            ("start", 1, 0),
            ("retry", 0, 0),
            ("done", 1, 0),
            ("start", 0, 1),
            ("done", 0, 1),
        ]

    def test_straggler_event(self):
        seen = []
        events = RankEvents(on_straggler=lambda r, e, m: seen.append((r, e, m)))
        executor, clock, _ = make_executor(events=events, straggler_factor=2.0)

        def work(dt):
            clock.advance(dt)
            return dt

        executor.run(work, [1.0, 1.0, 5.0])
        assert seen == [(2, 5.0, 1.0)]

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        executor, _, _ = make_executor(max_retries=1, metrics=metrics)
        injector = FailureInjector([0], fail_attempts=1)
        executor.run(lambda x: x, [1, 2], injector=injector)
        snap = metrics.snapshot()
        assert snap["counters"]["ranks.completed"] == 2
        assert snap["counters"]["ranks.retried"] == 1
        assert snap["gauges"]["ranks.total"] == 2
        assert snap["histograms"]["rank.elapsed_s"]["count"] == 2

    def test_tracer_span_wraps_run(self):
        sink = ListSink()
        executor, _, _ = make_executor(tracer=Tracer(sink, clock=FakeClock()))
        executor.run(lambda x: x, [1])
        (span,) = sink.spans
        assert span.name == "executor.run"
        assert span.attributes == {"ranks": 1, "backend": "serial"}

    def test_execution_report_to_dict(self):
        executor, _, _ = make_executor(max_retries=1)
        injector = FailureInjector([0], fail_attempts=1)
        result = executor.run(lambda x: x, [1], injector=injector)
        d = result.to_dict()
        assert d["total_retries"] == 1
        assert d["ranks"][0]["retries"] == 1
        assert len(d["ranks"][0]["attempts"]) == 2


class TestRunIter:
    """The completion-streaming surface (run_iter)."""

    def _collect(self, executor, fn, items, **kwargs):
        return list(executor.run_iter(fn, items, **kwargs))

    def test_serial_completions_in_submission_order(self):
        executor, _, _ = make_executor()
        done = self._collect(executor, lambda x: x * 10, [1, 2, 3])
        assert [c.index for c in done] == [0, 1, 2]
        assert [c.value for c in done] == [10, 20, 30]
        assert all(c.in_flight >= 1 for c in done)

    def test_empty_items(self):
        executor, _, _ = make_executor()
        assert self._collect(executor, lambda x: x, []) == []

    def test_transient_failure_retried_per_task(self):
        executor, _, sleeps = make_executor(max_retries=2)
        injector = FailureInjector([1], fail_attempts=1)
        done = self._collect(
            executor, lambda x: x, ["a", "b", "c"], injector=injector
        )
        by_index = {c.index: c for c in done}
        assert by_index[1].value == "b"
        assert by_index[1].report.retries == 1
        assert not by_index[1].report.attempts[0].ok
        assert by_index[1].report.attempts[1].ok
        assert len(sleeps) == 1

    def test_fatal_error_raises_with_rank_message(self):
        executor, _, _ = make_executor(max_retries=5)
        injector = FailureInjector([1], fatal=True)
        with pytest.raises(FatalRankError, match="rank 1 failed fatally"):
            self._collect(executor, lambda x: x, [1, 2], injector=injector)

    def test_retry_budget_exhausted_raises(self):
        executor, _, _ = make_executor(max_retries=2)
        injector = FailureInjector([0], fail_attempts=10)
        with pytest.raises(RetryExhaustedError, match="retry budget 2 exhausted"):
            self._collect(executor, lambda x: x, [1], injector=injector)

    def test_timeout_classified_and_retried(self):
        executor, clock, _ = make_executor(max_retries=1, rank_timeout_s=5.0)
        durations = iter([10.0, 1.0])

        def work(x):
            clock.advance(next(durations))
            return x

        done = self._collect(executor, work, ["ok"])
        first, second = done[0].report.attempts
        assert not first.ok and "RankTimeoutError" in first.error
        assert second.ok

    def test_online_straggler_flagged_against_running_median(self):
        executor, clock, _ = make_executor(straggler_factor=3.0)

        def work(dt):
            clock.advance(dt)
            return dt

        done = self._collect(executor, work, [1.0, 1.0, 10.0])
        assert [c.report.straggler for c in done] == [False, False, True]

    def test_early_finisher_never_flagged_retroactively(self):
        # The slow task completes first (serial order); with fewer than
        # two earlier successes there is no median to compare against.
        executor, clock, _ = make_executor(straggler_factor=3.0)

        def work(dt):
            clock.advance(dt)
            return dt

        done = self._collect(executor, work, [10.0, 1.0, 1.0])
        assert all(not c.report.straggler for c in done)

    def test_submit_hook_steers_order(self):
        executor, _, _ = make_executor()
        done = self._collect(
            executor,
            lambda x: x,
            [0, 1, 2],
            submit_hook=lambda pending: pending[-1],
        )
        assert [c.index for c in done] == [2, 1, 0]

    def test_submit_hook_bad_index_rejected(self):
        from repro.errors import GenerationError

        executor, _, _ = make_executor()
        with pytest.raises(GenerationError, match="not an unsubmitted task"):
            self._collect(
                executor, lambda x: x, [1, 2], submit_hook=lambda pending: 99
            )

    def test_submit_hook_stall_detected(self):
        from repro.errors import GenerationError

        executor, _, _ = make_executor()
        with pytest.raises(GenerationError, match="stalled the work queue"):
            self._collect(
                executor, lambda x: x, [1, 2], submit_hook=lambda pending: None
            )

    def test_invalid_max_in_flight_rejected(self):
        from repro.errors import GenerationError

        executor, _, _ = make_executor()
        with pytest.raises(GenerationError, match="max_in_flight"):
            self._collect(executor, lambda x: x, [1], max_in_flight=0)

    def test_metrics_match_run_semantics(self):
        metrics = MetricsRegistry()
        executor, _, _ = make_executor(max_retries=1, metrics=metrics)
        injector = FailureInjector([0], fail_attempts=1)
        self._collect(executor, lambda x: x, [1, 2], injector=injector)
        snap = metrics.snapshot()
        assert snap["counters"]["ranks.completed"] == 2
        assert snap["counters"]["ranks.retried"] == 1
        assert snap["gauges"]["ranks.total"] == 2
        assert snap["histograms"]["rank.elapsed_s"]["count"] == 2

    def test_per_task_spans_recorded(self):
        sink = ListSink()
        executor, _, _ = make_executor(tracer=Tracer(sink, clock=FakeClock()))
        self._collect(executor, lambda x: x, [1, 2])
        names = [s.name for s in sink.spans]
        assert names.count("executor.task") == 2
        assert names.count("executor.run_iter") == 1
        task_spans = [s for s in sink.spans if s.name == "executor.task"]
        assert {s.attributes["task"] for s in task_spans} == {0, 1}
        assert all(s.attributes["ok"] for s in task_spans)

    def test_map_only_backend_adapted(self):
        from repro.runtime import as_streaming
        from repro.typing import StreamingBackend

        class MapOnly:
            name = "map-only"

            def map(self, fn, items):
                return [fn(i) for i in items]

        backend = MapOnly()
        assert not isinstance(backend, StreamingBackend)
        adapted = as_streaming(backend)
        assert isinstance(adapted, StreamingBackend)
        executor = RankExecutor(backend)
        done = list(executor.run_iter(lambda x: x + 1, [1, 2, 3]))
        assert [c.value for c in done] == [2, 3, 4]

    def test_thread_backend_overlaps_straggler(self):
        # One slow task on two workers: total wall must be well below
        # the serial sum (real sleeps, kept tiny).
        import time as _time

        from repro.parallel import ThreadBackend

        backend = ThreadBackend(max_workers=2)
        try:
            executor = RankExecutor(backend)

            def work(dt):
                _time.sleep(dt)
                return dt

            durations = [0.2, 0.05, 0.05, 0.05]
            t0 = _time.perf_counter()
            done = list(executor.run_iter(work, durations))
            wall = _time.perf_counter() - t0
        finally:
            backend.shutdown()
        assert sorted(c.value for c in done) == sorted(durations)
        assert wall < sum(durations)
