"""Randomized cross-oracle battery.

Every major kernel checked against an independent implementation (SciPy
sparse, NetworkX, dense NumPy) on randomized workloads — broader and
more adversarial than the per-module unit tests.
"""

import numpy as np
import pytest

from repro.design import chain_properties
from repro.graphs import Graph
from repro.kron import KroneckerChain, kron, kron_chain
from repro.semiring import BOOL_OR_AND, MAX_PLUS, MIN_PLUS, PLUS_TIMES
from repro.sparse import from_dense, matrix_power, to_dense
from repro.sparse.convert import to_scipy
from tests.conftest import random_dense


def symmetric_dense(rng, n, density=0.3):
    a = random_dense(rng, n, n, density)
    a = np.minimum(a + a.T, 1)
    np.fill_diagonal(a, 0)
    return a.astype(np.int64)


class TestScipyOracle:
    def test_matmul_chains(self, rng):
        for _ in range(10):
            mats = [random_dense(rng, 6, 6) for _ in range(4)]
            ours = from_dense(mats[0]).to_csr()
            theirs = to_scipy(from_dense(mats[0])).tocsr()
            for m in mats[1:]:
                ours = ours.matmul(from_dense(m).to_csr())
                theirs = theirs @ to_scipy(from_dense(m)).tocsr()
            np.testing.assert_array_equal(ours.to_dense(), theirs.toarray())

    def test_kron_vs_scipy(self, rng):
        import scipy.sparse as sp

        for _ in range(10):
            a = random_dense(rng, 5, 4)
            b = random_dense(rng, 3, 6)
            ours = kron(from_dense(a), from_dense(b))
            theirs = sp.kron(
                to_scipy(from_dense(a)), to_scipy(from_dense(b))
            ).toarray()
            np.testing.assert_array_equal(ours.to_dense(), theirs)

    def test_matrix_power_vs_scipy(self, rng):
        a = symmetric_dense(rng, 8)
        ours = matrix_power(from_dense(a), 4)
        theirs = np.linalg.matrix_power(a, 4)
        np.testing.assert_array_equal(ours.to_dense(), theirs)

    def test_transpose_and_ewise_compose(self, rng):
        a = random_dense(rng, 7, 7)
        b = random_dense(rng, 7, 7)
        ours = (from_dense(a).T + from_dense(b)).to_dense()
        np.testing.assert_array_equal(ours, a.T + b)


class TestSemiringOracles:
    def test_min_plus_power_is_shortest_paths(self, rng):
        # (D^(n-1)) over min-plus == all-pairs shortest paths.
        n = 6
        weights = rng.integers(1, 9, (n, n)).astype(float)
        mask = rng.random((n, n)) < 0.5
        inf = np.inf
        D = np.where(mask, weights, inf)
        np.fill_diagonal(D, 0.0)
        sparse_d = from_dense(D, semiring=MIN_PLUS).to_csr()
        result = sparse_d
        for _ in range(n - 2):
            result = result.matmul(sparse_d, MIN_PLUS)
        ours = np.full((n, n), inf)
        coo = result.to_coo()
        ours[coo.rows, coo.cols] = coo.vals
        # Floyd-Warshall oracle.
        fw = D.copy()
        for k in range(n):
            fw = np.minimum(fw, fw[:, [k]] + fw[[k], :])
        np.testing.assert_allclose(ours, fw)

    def test_boolean_power_is_reachability(self, rng):
        n = 7
        a = (rng.random((n, n)) < 0.25)
        sparse_a = from_dense(a).to_csr()
        result = sparse_a
        for _ in range(n - 2):
            result = result.matmul(sparse_a, BOOL_OR_AND)
        reach = np.linalg.matrix_power(a.astype(np.int64), n - 1) > 0
        np.testing.assert_array_equal(result.to_dense() != 0, reach)

    def test_max_plus_longest_walk_step(self, rng):
        n = 5
        ninf = -np.inf
        W = np.where(rng.random((n, n)) < 0.5, rng.integers(1, 5, (n, n)).astype(float), ninf)
        sw = from_dense(W, semiring=MAX_PLUS).to_csr()
        out = sw.matmul(sw, MAX_PLUS)
        expected = np.full((n, n), ninf)
        for i in range(n):
            for j in range(n):
                expected[i, j] = max(W[i, k] + W[k, j] for k in range(n))
        ours = np.full((n, n), ninf)
        coo = out.to_coo()
        ours[coo.rows, coo.cols] = coo.vals
        np.testing.assert_allclose(ours, expected)


class TestNetworkxOracle:
    def _nx(self, graph: Graph):
        import networkx as nx

        G = nx.Graph()
        G.add_nodes_from(range(graph.num_vertices))
        for r, c, _ in graph.adjacency:
            if r < c:
                G.add_edge(int(r), int(c))
        return G

    def test_triangles_on_random_graphs(self, rng):
        import networkx as nx

        for _ in range(8):
            a = symmetric_dense(rng, 14, density=0.4)
            g = Graph(from_dense(a))
            expected = sum(nx.triangles(self._nx(g)).values()) // 3
            assert g.num_triangles() == expected

    def test_components_on_random_graphs(self, rng):
        import networkx as nx

        from repro.kron import connected_components

        for _ in range(8):
            a = symmetric_dense(rng, 16, density=0.12)
            g = Graph(from_dense(a))
            ours = len(np.unique(connected_components(g.adjacency)))
            theirs = nx.number_connected_components(self._nx(g))
            assert ours == theirs

    def test_chain_properties_on_random_constituents(self, rng):
        for _ in range(5):
            mats = [from_dense(symmetric_dense(rng, rng.integers(3, 6))) for _ in range(2)]
            if any(m.nnz == 0 for m in mats):
                continue
            props = chain_properties(mats)
            g = Graph(kron_chain(mats))
            assert props.num_vertices == g.num_vertices
            assert props.nnz == g.num_edges
            assert props.degree_distribution == g.degree_distribution()
            assert props.triangles == g.num_triangles()

    def test_lazy_chain_degrees_on_random_constituents(self, rng):
        mats = [from_dense(symmetric_dense(rng, 4)) for _ in range(3)]
        chain = KroneckerChain(mats)
        g = Graph(chain.materialize())
        degrees = g.degree_vector()
        probe = rng.integers(0, chain.num_vertices, size=30)
        for v in probe:
            assert chain.degree_of(int(v)) == degrees[v]
