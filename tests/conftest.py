"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import from_dense
from repro.sparse.coo import COOMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds create their own."""
    return np.random.default_rng(12345)


def random_dense(rng: np.random.Generator, n: int, m: int, density: float = 0.3) -> np.ndarray:
    """Random small int64 matrix with ~density nonzeros, values in 1..4."""
    mask = rng.random((n, m)) < density
    vals = rng.integers(1, 5, size=(n, m))
    return (mask * vals).astype(np.int64)


def random_coo(rng: np.random.Generator, n: int, m: int, density: float = 0.3) -> COOMatrix:
    return from_dense(random_dense(rng, n, m, density))


def assert_matrix_equals_dense(sparse, dense: np.ndarray) -> None:
    np.testing.assert_array_equal(sparse.to_dense(), dense)
