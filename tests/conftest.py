"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sparse import from_dense
from repro.sparse.coo import COOMatrix

try:  # hypothesis is a test-only dependency; the suite mostly works without
    from hypothesis import HealthCheck, settings as _hyp_settings

    # The "ci" profile makes the churn/codec property sweeps reproducible
    # on shared runners: no wall-clock deadline (CI machines stall), a
    # derandomized example stream (failures reproduce across reruns), and
    # the failing-example blob printed so a red run can be replayed
    # locally with @reproduce_failure.  Select with HYPOTHESIS_PROFILE=ci.
    _hyp_settings.register_profile(
        "ci",
        deadline=None,
        derandomize=True,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - exercised only without hypothesis
    pass


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds create their own."""
    return np.random.default_rng(12345)


def random_dense(rng: np.random.Generator, n: int, m: int, density: float = 0.3) -> np.ndarray:
    """Random small int64 matrix with ~density nonzeros, values in 1..4."""
    mask = rng.random((n, m)) < density
    vals = rng.integers(1, 5, size=(n, m))
    return (mask * vals).astype(np.int64)


def random_coo(rng: np.random.Generator, n: int, m: int, density: float = 0.3) -> COOMatrix:
    return from_dense(random_dense(rng, n, m, density))


def assert_matrix_equals_dense(sparse, dense: np.ndarray) -> None:
    np.testing.assert_array_equal(sparse.to_dense(), dense)
