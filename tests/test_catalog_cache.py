"""Tests for the content-addressed catalog cache."""

import json

import pytest

from repro.catalog import (
    CACHE_VERSION,
    CatalogCache,
    DesignCatalog,
    analytic_properties,
    key_digest,
)
from repro.design import PowerLawDesign
from repro.errors import CatalogError
from repro.models import StochasticKroneckerModel
from repro.parallel.stream import generate_to_disk


@pytest.fixture
def design():
    return PowerLawDesign([3, 4, 5], "center")


class TestStoreLoad:
    def test_round_trip(self, tmp_path, design):
        cache = CatalogCache(tmp_path)
        record = analytic_properties(design)
        cache.store(record)
        assert cache.load(record.key_digest, "analytic") == record

    def test_second_store_is_byte_identical(self, tmp_path, design):
        cache = CatalogCache(tmp_path)
        record = analytic_properties(design)
        path = cache.store(record)
        first = path.read_bytes()
        assert cache.store(record).read_bytes() == first

    def test_missing_entry_is_none(self, tmp_path, design):
        cache = CatalogCache(tmp_path)
        assert cache.load(key_digest(design), "analytic") is None

    def test_malformed_digest_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            CatalogCache(tmp_path).entry_path("sha256:../escape", "analytic")


class TestCorruptionHandling:
    """Reads trust nothing; every defect is a silent miss."""

    def _stored(self, tmp_path, design):
        cache = CatalogCache(tmp_path)
        record = analytic_properties(design)
        path = cache.store(record)
        return cache, record, path

    def test_flipped_bit_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        assert cache.load(record.key_digest, "analytic") is None

    def test_truncated_file_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.load(record.key_digest, "analytic") is None

    def test_garbage_json_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        path.write_text("not json at all\n")
        assert cache.load(record.key_digest, "analytic") is None

    def test_stale_cache_version_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        doc = json.loads(path.read_text())
        doc["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        assert cache.load(record.key_digest, "analytic") is None

    def test_checksum_mismatch_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        doc = json.loads(path.read_text())
        # A self-consistent edit (valid JSON, valid schema) that the
        # checksum still catches.
        doc["properties"]["num_edges"] = doc["properties"]["num_edges"] + "0"
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        assert cache.load(record.key_digest, "analytic") is None

    def test_wrong_source_slot_is_a_miss(self, tmp_path, design):
        cache, record, path = self._stored(tmp_path, design)
        # Copy the analytic entry into the empirical slot.
        other = cache.entry_path(record.key_digest, "empirical")
        other.write_bytes(path.read_bytes())
        assert cache.load(record.key_digest, "empirical") is None


class TestDesignCatalogFacade:
    def test_corrupt_entry_recomputed_and_restored(self, tmp_path, design):
        catalog = DesignCatalog(tmp_path / "cache")
        record = catalog.analytic(design)
        path = catalog.cache.entry_path(record.key_digest, "analytic")
        good = path.read_bytes()
        raw = bytearray(good)
        raw[len(raw) // 3] ^= 0x01
        path.write_bytes(bytes(raw))
        again = catalog.analytic(design)
        assert again == record
        assert path.read_bytes() == good

    def test_warm_lookup_hits_without_recompute(self, tmp_path, design):
        catalog = DesignCatalog(tmp_path / "cache")
        first = catalog.analytic(design)
        path = catalog.cache.entry_path(first.key_digest, "analytic")
        mtime = path.stat().st_mtime_ns
        second = catalog.analytic(design)
        assert second == first
        # Warm hits must not rewrite the entry.
        assert path.stat().st_mtime_ns == mtime

    def test_refresh_forces_recompute_and_rewrite(self, tmp_path, design):
        catalog = DesignCatalog(tmp_path / "cache")
        first = catalog.analytic(design)
        path = catalog.cache.entry_path(first.key_digest, "analytic")
        good = path.read_bytes()
        path.write_text("garbage")
        second = catalog.analytic(design, refresh=True)
        assert second == first
        assert path.read_bytes() == good

    def test_participation_upgrade_replaces_bare_entry(self, tmp_path, design):
        catalog = DesignCatalog(tmp_path / "cache")
        bare = catalog.analytic(design)
        assert not bare.triangles.has_participation
        full = catalog.analytic(design, include_participation=True)
        assert full.triangles.has_participation
        # The richer record is now what the cache serves.
        hit = catalog.cache.load(full.key_digest, "analytic")
        assert hit is not None and hit.triangles.has_participation

    def test_empirical_side_caches_too(self, tmp_path):
        shard_dir = tmp_path / "shards"
        generate_to_disk(PowerLawDesign([5, 3], "center"), 2, shard_dir)
        catalog = DesignCatalog(tmp_path / "cache")
        first = catalog.empirical(shard_dir)
        path = catalog.cache.entry_path(first.key_digest, "empirical")
        assert path.exists()
        bytes_before = path.read_bytes()
        assert catalog.empirical(shard_dir) == first
        assert path.read_bytes() == bytes_before

    def test_analytic_and_empirical_entries_coexist(self, tmp_path):
        shard_dir = tmp_path / "shards"
        design = PowerLawDesign([5, 3], "center")
        generate_to_disk(design, 2, shard_dir)
        catalog = DesignCatalog(tmp_path / "cache")
        a = catalog.analytic(design)
        e = catalog.empirical(shard_dir)
        assert a.key_digest == e.key_digest
        names = sorted(p.name for p in (tmp_path / "cache").iterdir())
        assert len(names) == 2
        assert names[0].endswith(".analytic.json")
        assert names[1].endswith(".empirical.json")

    def test_model_records_cache_under_their_own_key(self, tmp_path):
        catalog = DesignCatalog(tmp_path / "cache")
        model = StochasticKroneckerModel(levels=6, num_edges=128, seed=5)
        record = catalog.analytic(model)
        assert record.model == "skg"
        assert catalog.cache.load(record.key_digest, "analytic") == record


class TestConcurrentReplacement:
    """The read path tolerates a writer replacing the entry mid-read.

    Regression: ``atomic_write_bytes`` used a pid-only temp filename, so
    two same-process threads storing the same digest shared one temp
    file — one writer's rename could publish the other's half-written
    bytes, and a concurrent ``load`` could observe the torn entry.
    Unique per-call temp names plus the single-read-and-validate retry
    in ``CatalogCache.load`` make every interleaving safe: a load during
    a storm of writers always returns the (identical) record, never a
    spurious miss, never an exception.
    """

    def test_load_survives_interleaved_writer_threads(self, tmp_path, design):
        import threading

        cache = CatalogCache(tmp_path)
        record = analytic_properties(design)
        cache.store(record)
        stop = threading.Event()
        writer_errors = []

        def _hammer_store():
            try:
                while not stop.is_set():
                    cache.store(record)
            except Exception as exc:  # noqa: BLE001 - reported below
                writer_errors.append(exc)

        writers = [
            threading.Thread(target=_hammer_store, daemon=True)
            for _ in range(4)
        ]
        for thread in writers:
            thread.start()
        try:
            misses = 0
            for _ in range(300):
                loaded = cache.load(record.key_digest, "analytic")
                if loaded is None:
                    misses += 1
                else:
                    assert loaded == record
            assert misses == 0, (
                f"{misses}/300 loads missed while writers were replacing "
                "the (identical) entry"
            )
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=10)
        assert not writer_errors, f"writer raised: {writer_errors[0]!r}"
        # The storm must leave exactly the entry, no stray temp files.
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name.startswith(".")
        ]
        assert leftovers == []

    def test_unreadable_then_fixed_entry_is_not_sticky(self, tmp_path, design):
        cache = CatalogCache(tmp_path)
        record = analytic_properties(design)
        path = cache.store(record)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        assert cache.load(record.key_digest, "analytic") is None
        path.write_bytes(good)
        assert cache.load(record.key_digest, "analytic") == record
