"""Unit tests for COOMatrix."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sparse import from_dense, from_triples, zeros
from repro.sparse.coo import COOMatrix
from tests.conftest import random_dense


def small():
    return from_triples((3, 3), [0, 1, 2], [1, 0, 2], [5, 7, 9])


class TestConstruction:
    def test_canonicalizes_duplicates(self):
        m = from_triples((2, 2), [0, 0], [1, 1], [2, 3])
        assert m.nnz == 1
        assert m.get(0, 1) == 5

    def test_rejects_out_of_range_rows(self):
        with pytest.raises(FormatError):
            from_triples((2, 2), [2], [0], [1])

    def test_rejects_out_of_range_cols(self):
        with pytest.raises(FormatError):
            from_triples((2, 2), [0], [5], [1])

    def test_rejects_negative_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 2), np.array([]), np.array([]), np.array([]))

    def test_rejects_ragged_arrays(self):
        with pytest.raises(ShapeError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1]))

    def test_zero_values_dropped(self):
        m = from_triples((2, 2), [0, 1], [0, 1], [0, 3])
        assert m.nnz == 1

    def test_empty_matrix(self):
        m = zeros((4, 5))
        assert m.nnz == 0
        assert m.shape == (4, 5)
        assert m.to_dense().shape == (4, 5)


class TestAccess:
    def test_get_present(self):
        assert small().get(0, 1) == 5

    def test_get_absent_default(self):
        assert small().get(0, 0) == 0
        assert small().get(0, 0, default=-1) == -1

    def test_get_out_of_range(self):
        with pytest.raises(IndexError):
            small().get(5, 0)

    def test_iteration_yields_sorted_triples(self):
        triples = list(small())
        assert triples == [(0, 1, 5), (1, 0, 7), (2, 2, 9)]


class TestWithEntry:
    def test_set_new_entry(self):
        m = small().with_entry(0, 0, 4)
        assert m.get(0, 0) == 4
        assert m.nnz == 4

    def test_overwrite_entry(self):
        m = small().with_entry(0, 1, 8)
        assert m.get(0, 1) == 8
        assert m.nnz == 3

    def test_remove_entry_with_zero(self):
        m = small().with_entry(0, 1, 0)
        assert m.get(0, 1) == 0
        assert m.nnz == 2

    def test_remove_absent_is_noop(self):
        m = small()
        assert m.with_entry(0, 0, 0) is m

    def test_without_self_loop(self):
        m = from_triples((2, 2), [0, 0], [0, 1], [1, 1]).without_self_loop(0)
        assert m.get(0, 0) == 0
        assert m.get(0, 1) == 1

    def test_original_unchanged(self):
        m = small()
        m.with_entry(0, 0, 9)
        assert m.get(0, 0) == 0


class TestAlgebra:
    def test_transpose_roundtrip(self, rng):
        A = random_dense(rng, 6, 4)
        m = from_dense(A)
        assert m.T.T.equal(m)
        np.testing.assert_array_equal(m.T.to_dense(), A.T)

    def test_matmul_matches_dense(self, rng):
        A = random_dense(rng, 5, 4)
        B = random_dense(rng, 4, 6)
        np.testing.assert_array_equal(
            from_dense(A).matmul(from_dense(B)).to_dense(), A @ B
        )

    def test_ewise_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            small().ewise_add(zeros((2, 2)))

    def test_ewise_add_cancellation_drops_entry(self):
        a = from_triples((2, 2), [0], [0], [3])
        b = from_triples((2, 2), [0], [0], [-3])
        assert (a + b).nnz == 0

    def test_ewise_mult_intersects(self):
        a = from_triples((2, 2), [0, 1], [0, 1], [2, 3])
        b = from_triples((2, 2), [0, 1], [0, 0], [4, 5])
        out = a * b
        assert out.nnz == 1
        assert out.get(0, 0) == 8

    def test_scale(self):
        m = small().scale(3)
        assert m.get(0, 1) == 15

    def test_scale_by_zero_empties(self):
        assert small().scale(0).nnz == 0


class TestReductions:
    def test_sum_exact(self):
        assert small().sum() == 21

    def test_sum_large_values_no_overflow(self):
        big = np.int64(2**62)
        m = from_triples((1, 3), [0, 0, 0], [0, 1, 2], [big, big, big])
        assert m.sum() == 3 * 2**62  # exceeds int64

    def test_row_nnz(self):
        np.testing.assert_array_equal(small().row_nnz(), [1, 1, 1])

    def test_col_nnz(self):
        np.testing.assert_array_equal(small().col_nnz(), [1, 1, 1])

    def test_diagonal_nnz(self):
        assert small().diagonal_nnz() == 1


class TestStructure:
    def test_symmetric_true(self):
        m = from_triples((2, 2), [0, 1], [1, 0], [1, 1])
        assert m.is_symmetric()

    def test_symmetric_false_values(self):
        m = from_triples((2, 2), [0, 1], [1, 0], [1, 2])
        assert not m.is_symmetric()

    def test_nonsquare_never_symmetric(self):
        assert not zeros((2, 3)).is_symmetric()

    def test_permuted_identity_is_noop(self, rng):
        A = random_dense(rng, 5, 5)
        m = from_dense(A)
        assert m.permuted(np.arange(5)).equal(m)

    def test_permuted_matches_dense_fancy_index(self, rng):
        A = random_dense(rng, 6, 6)
        perm = rng.permutation(6)
        out = from_dense(A).permuted(perm)
        np.testing.assert_array_equal(out.to_dense(), A[np.ix_(perm, perm)])

    def test_permuted_wrong_length(self):
        with pytest.raises(ShapeError):
            small().permuted(np.arange(2))
