"""Unit tests for the real-workload rate-curve simulator."""

import pytest

from repro.design import PowerLawDesign
from repro.errors import PartitionError
from repro.parallel import simulate_rate_curve


class TestSimulateRateCurve:
    def test_small_design_all_points_measured(self):
        design = PowerLawDesign([3, 4, 5])
        curve = simulate_rate_curve(design, [1, 2, 4], max_block_entries=10**6)
        assert all(p.measured for p in curve.points)
        assert curve.peak_rate() > 0

    def test_per_rank_edges_shrink_with_cores(self):
        design = PowerLawDesign([3, 4, 5, 9])
        curve = simulate_rate_curve(design, [1, 4, 16], max_block_entries=10**7)
        measured = curve.measured_points()
        edges = [p.per_rank_edges for p in measured]
        assert edges == sorted(edges, reverse=True)
        # total work conserved: cores * per-rank ~ raw nnz (within slicing).
        for p in measured:
            assert p.cores * p.per_rank_edges >= design.raw_nnz * 0.9

    def test_oversized_blocks_skipped_with_reason(self):
        design = PowerLawDesign([3, 4, 5, 9, 16])
        curve = simulate_rate_curve(design, [1], max_block_entries=10_000)
        point = curve.points[0]
        assert not point.measured
        assert "exceeds budget" in point.skip_reason
        assert "skipped" in point.to_text()

    def test_invalid_core_counts_skipped(self):
        design = PowerLawDesign([3, 4, 5])
        curve = simulate_rate_curve(design, [0, 10**9], max_block_entries=10**6)
        assert not any(p.measured for p in curve.points)

    def test_no_measurable_point_raises_on_peak(self):
        design = PowerLawDesign([3, 4, 5, 9, 16])
        curve = simulate_rate_curve(design, [1], max_block_entries=10_000)
        with pytest.raises(PartitionError):
            curve.peak_rate()

    def test_explicit_split_respected(self):
        design = PowerLawDesign([3, 4, 5, 9])
        curve = simulate_rate_curve(
            design, [2], split_index=2, max_block_entries=10**7
        )
        assert curve.points[0].measured

    def test_infeasible_budget_raises(self):
        design = PowerLawDesign([3, 4, 5])
        with pytest.raises(PartitionError):
            simulate_rate_curve(design, [1], max_block_entries=1)

    def test_text_rendering(self):
        design = PowerLawDesign([3, 4])
        curve = simulate_rate_curve(design, [1, 2], max_block_entries=10**6)
        text = curve.to_text()
        assert "edges/s (simulated)" in text
