"""Completion-driven execution: determinism, backpressure, and metrics.

The engine's contract is that the work-queue scheduler changes *when*
ranks execute but never *what* lands on disk: sink commits stay in
ascending rank order, so shard bytes, ``manifest.json``, and resume
state are byte-identical to the static path.
"""

import json
from pathlib import Path

import pytest

from repro.design import PowerLawDesign
from repro.engine import WorkQueueScheduler
from repro.parallel import (
    ParallelKroneckerGenerator,
    ThreadBackend,
    VirtualCluster,
    generate_to_disk,
    streamed_degree_distribution,
)
from repro.runtime import FailureInjector, MetricsRegistry


def _read_shards(summary):
    return {Path(p).name: Path(p).read_bytes() for p in summary.files}


def _read_manifest(directory):
    with open(directory / "manifest.json") as fh:
        return json.load(fh)


class TestRankOrderCommitDeterminism:
    """Satellite: out-of-order execution, in-order commit."""

    def test_queue_output_byte_identical_to_static(self, tmp_path):
        design = PowerLawDesign([3, 4, 5], "center")
        static_dir = tmp_path / "static"
        queue_dir = tmp_path / "queue"

        static = generate_to_disk(design, 6, static_dir)
        # Delay rank 0 by one injected transient failure so later ranks
        # finish first on the thread pool — commits must still land 0..5.
        queued = generate_to_disk(
            design,
            6,
            queue_dir,
            backend=ThreadBackend(max_workers=2),
            scheduler=WorkQueueScheduler(),
            failure_injector=FailureInjector([0], fail_attempts=1),
            max_retries=1,
        )

        assert [Path(p).name for p in static.files] == [
            Path(p).name for p in queued.files
        ]
        assert _read_shards(static) == _read_shards(queued)

        static_manifest = _read_manifest(static_dir)
        queue_manifest = _read_manifest(queue_dir)
        assert static_manifest == queue_manifest
        assert static.total_edges == queued.total_edges == design.num_edges

    def test_backpressure_budget_preserves_output(self, tmp_path):
        # A tiny reorder budget forces the buffer to throttle submission
        # toward the commit pointer; bytes must not change.
        design = PowerLawDesign([3, 4, 5], "center")
        loose = generate_to_disk(design, 8, tmp_path / "loose")
        tight = generate_to_disk(
            design,
            8,
            tmp_path / "tight",
            memory_budget_entries=63,
            backend=ThreadBackend(max_workers=4),
            scheduler=WorkQueueScheduler(),
        )
        assert _read_shards(loose) == _read_shards(tight)
        assert _read_manifest(tmp_path / "loose") == _read_manifest(
            tmp_path / "tight"
        )

    def test_serial_backend_on_queue_path(self, tmp_path):
        # The streaming branch must also hold on the reference backend.
        design = PowerLawDesign([3, 4], "leaf")
        static = generate_to_disk(design, 3, tmp_path / "a")
        queued = generate_to_disk(
            design, 3, tmp_path / "b", scheduler=WorkQueueScheduler()
        )
        assert _read_shards(static) == _read_shards(queued)


class TestQueueSchedulerAcrossSinks:
    def test_assembly_sink_matches_materialization(self):
        from repro.graphs import star_adjacency
        from repro.kron import KroneckerChain

        chain = KroneckerChain(
            [star_adjacency(3), star_adjacency(4), star_adjacency(5)]
        )
        gen = ParallelKroneckerGenerator(
            chain,
            VirtualCluster(4),
            backend=ThreadBackend(max_workers=2),
            scheduler=WorkQueueScheduler(),
        )
        assert gen.assemble().equal(chain.materialize())

    def test_degree_sink_matches_design_prediction(self):
        design = PowerLawDesign([3, 4, 5], "center")
        dist = streamed_degree_distribution(
            design,
            6,
            backend=ThreadBackend(max_workers=2),
            scheduler=WorkQueueScheduler(),
        )
        assert dist == design.degree_distribution


class TestStreamingMetrics:
    def test_queue_metrics_populated(self, tmp_path):
        metrics = MetricsRegistry()
        generate_to_disk(
            PowerLawDesign([3, 4, 5], "center"),
            6,
            tmp_path,
            backend=ThreadBackend(max_workers=2),
            scheduler=WorkQueueScheduler(),
            metrics=metrics,
        )
        gauges = metrics.snapshot()["gauges"]
        assert gauges["engine.queue_depth"] >= 1
        assert 0.0 < gauges["engine.worker_utilization"] <= 1.0
        assert gauges["engine.straggler_gap_s"] >= 0.0

    def test_static_path_reports_utilization_but_no_queue_depth(self, tmp_path):
        metrics = MetricsRegistry()
        generate_to_disk(
            PowerLawDesign([3, 4], "center"), 3, tmp_path, metrics=metrics
        )
        gauges = metrics.snapshot()["gauges"]
        assert gauges["engine.queue_depth"] == 0
        assert 0.0 < gauges["engine.worker_utilization"] <= 1.0

    def test_peak_tile_gauge_resets_between_runs(self, tmp_path):
        """Satellite regression: the gauge reflects *this* run, not the max
        over the registry's lifetime."""
        metrics = MetricsRegistry()
        big = PowerLawDesign([3, 4, 5, 9], "center")
        generate_to_disk(big, 4, tmp_path / "big", metrics=metrics)
        first_peak = metrics.snapshot()["gauges"]["engine.peak_tile_entries"]

        small = PowerLawDesign([3, 2], "center")
        generate_to_disk(small, 2, tmp_path / "small", metrics=metrics)
        second_peak = metrics.snapshot()["gauges"]["engine.peak_tile_entries"]

        assert second_peak < first_peak


class TestInjectorMapping:
    def test_injector_follows_task_identity_not_position(self, tmp_path):
        # LPT reorders submission, so positional mapping would fire the
        # injector on the wrong rank; a fatal injection on rank 2 must
        # name rank 2 no matter where LPT placed it.
        from repro.errors import FatalRankError

        with pytest.raises(FatalRankError, match="rank 2"):
            generate_to_disk(
                PowerLawDesign([3, 4, 5], "center"),
                6,
                tmp_path,
                scheduler=WorkQueueScheduler(),
                failure_injector=FailureInjector([2], fatal=True),
            )
