#!/usr/bin/env python3
"""Re-draw the paper's worked figures in the terminal.

Figure 1: the Kronecker product of the m̂=5 and m̂=3 stars, before and
after the component-grouping permutation (Weischel's two bipartite
sub-graphs), plus its exact degree distribution on n(d) = 15/d.

Figure 2: the same product with center self-loops (15 triangles) and
leaf self-loops (1 triangle), with the triangles actually enumerated.

Figures 4-7's degree distributions are printed as log-log series for
the extreme-scale designs.

Run:  python examples/paper_figures.py
"""

from repro import PowerLawDesign
from repro.analysis import degree_series, enumerate_triangles, spy_with_caption
from repro.graphs import star_adjacency
from repro.kron import component_permutation, kron


def figure_1() -> None:
    print("=" * 60)
    print("Figure 1 — kron of two star (bipartite) graphs")
    print("=" * 60)
    a, b = star_adjacency(5), star_adjacency(3)
    c = kron(a, b)
    print(spy_with_caption(a, "A: star m̂=5", max_width=8))
    print(spy_with_caption(b, "B: star m̂=3", max_width=8))
    print(spy_with_caption(c, "C = A ⊗ B", max_width=24))
    permuted = c.permuted(component_permutation(c))
    print(spy_with_caption(permuted, "P= view: two bipartite sub-graphs", max_width=24))

    design = PowerLawDesign([5, 3])
    print("\nexact degree distribution (all on n(d) = 15/d):")
    for d, n in design.degree_distribution.items():
        print(f"  n({d:>2}) = {n:>2}   (d·n = {d * n})")


def figure_2() -> None:
    print("\n" + "=" * 60)
    print("Figure 2 — self-loops control the triangle count")
    print("=" * 60)
    for loop, label in (("center", "top: center loops"), ("leaf", "bottom: leaf loops")):
        design = PowerLawDesign([5, 3], loop)
        graph = design.realize()
        print(
            spy_with_caption(
                graph.adjacency, f"{label} -> {design.num_triangles} triangle(s)", max_width=24
            )
        )
        triangles = enumerate_triangles(graph)
        print(f"  enumerated: {triangles}")
        assert len(triangles) == design.num_triangles


def figures_5_to_7() -> None:
    print("\n" + "=" * 60)
    print("Figures 5-7 — extreme-scale degree distributions (log10)")
    print("=" * 60)
    cases = [
        ("Fig. 5 (10^15 edges)", PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256, 625])),
        ("Fig. 6 (center loops)", PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256, 625], "center")),
        (
            "Fig. 7 (10^30 edges)",
            PowerLawDesign(
                [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641], "leaf"
            ),
        ),
    ]
    for label, design in cases:
        series = degree_series(design.degree_distribution, label)
        print(
            f"{label}: {design.num_edges:,} edges, "
            f"{len(series)} distinct degrees, "
            f"log10 d in [0, {series.log10_degree[-1]:.1f}], "
            f"log10 n(1) = {series.log10_count[0]:.1f}"
        )
        # A coarse terminal rendering of the log-log curve.
        width, height = 60, 12
        grid = [[" "] * width for _ in range(height)]
        x_max = series.log10_degree[-1] or 1.0
        y_max = series.log10_count[0] or 1.0
        for x, y in zip(series.log10_degree, series.log10_count):
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int((1 - y / y_max) * (height - 1)))
            grid[row][col] = "·"
        for row in grid:
            print("   |" + "".join(row))
        print("   +" + "-" * width)


def main() -> None:
    figure_1()
    figure_2()
    figures_5_to_7()


if __name__ == "__main__":
    main()
