#!/usr/bin/env python3
"""Quickstart: design a power-law graph, know everything, then build it.

Demonstrates the library's core loop in under a minute:

1. declare a Kronecker design from star sizes,
2. read off its *exact* properties (no generation needed),
3. realize the graph in memory,
4. verify measured == predicted, exactly.

Run:  python examples/quickstart.py
"""

from repro import PowerLawDesign
from repro.validate import validate_design


def main() -> None:
    # -- 1. Declare a design: Kronecker product of stars with self-loops
    #       on the central vertices (the paper's triangle-rich Case 1).
    design = PowerLawDesign([3, 4, 5, 9], self_loop="center")
    print(f"design: {design}")

    # -- 2. Exact properties, computed from closed forms in microseconds.
    print(f"  vertices : {design.num_vertices:,}")
    print(f"  edges    : {design.num_edges:,}")
    print(f"  triangles: {design.num_triangles:,}")
    print(f"  max degree: {design.max_degree:,}")

    print("  degree distribution (first rows):")
    for d, c in list(design.degree_distribution.items())[:6]:
        print(f"    n({d}) = {c}")

    # -- 3+4. Realize it and validate every property, exactly.
    report = validate_design(design)
    print()
    print(report.to_text())

    # The same declarations work far beyond realizable scale:
    huge = PowerLawDesign([3, 4, 5, 9, 16, 25, 81, 256, 625], "center")
    print()
    print(f"same API at 10^15 edges: {huge.num_edges:,} edges, "
          f"{huge.num_triangles:,} triangles (exact, never generated)")


if __name__ == "__main__":
    main()
