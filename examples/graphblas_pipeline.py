#!/usr/bin/env python3
"""The GraphBLAS future goal, realized: generator + GrB workloads.

The paper: "The parallel Kronecker graph generator is ideally suited to
the GraphBLAS.org software standard and the creation of a high
performance version using this standard is a future goal."

This example runs the full pipeline in GraphBLAS idiom:

1. K0 — generate an exactly designed graph on simulated ranks,
2. K1 — construct the GrbMatrix,
3. K2 — run the GraphBLAS workloads: BFS levels, min-plus SSSP,
   masked triangle counting, PageRank,

cross-checking every measured result against the design's exact
predictions.

Run:  python examples/graphblas_pipeline.py
"""

import numpy as np

from repro import PowerLawDesign
from repro.grb import GrbMatrix, bfs_levels, pagerank, sssp_min_plus, triangle_count_grb
from repro.parallel.generator import generate_design_parallel
from repro.semiring import BOOL_OR_AND


def main() -> None:
    design = PowerLawDesign([3, 4, 5, 9], self_loop="center")
    print(f"K0  generating {design!r} on 8 simulated ranks...")
    graph = generate_design_parallel(design, n_ranks=8)
    print(f"    {graph.num_edges:,} edges (design predicted "
          f"{design.num_edges:,} — exact)")

    print("K1  constructing GraphBLAS matrix...")
    a = GrbMatrix(graph.adjacency.to_csr())
    print(f"    {a!r}")

    print("K2  workloads:")
    # Triangle counting: masked mxm, the paper's Section IV-A formula.
    triangles = triangle_count_grb(graph)
    print(f"    triangles (GrB masked mxm): {triangles:,} "
          f"(exact prediction {design.num_triangles:,})")
    assert triangles == design.num_triangles

    # BFS levels from the hub (all-centers vertex 0).
    levels = bfs_levels(graph, source=0)
    reached = int((levels >= 0).sum())
    print(f"    BFS from hub: {reached:,}/{graph.num_vertices:,} vertices "
          f"reached, eccentricity {levels.max()}")

    # Min-plus SSSP agrees with BFS on a 0/1 graph.
    dist = sssp_min_plus(graph, source=0)
    finite = np.isfinite(dist)
    assert (dist[finite] == levels[finite]).all()
    print("    min-plus SSSP == BFS levels on the 0/1 graph: True")

    # PageRank: the hub vertex dominates, as the power law dictates.
    scores = pagerank(graph)
    hub = int(np.argmax(scores))
    print(f"    PageRank: top vertex {hub} with score {scores[hub]:.5f} "
          f"(degree {graph.degree_vector()[hub]:,} of max "
          f"{design.max_degree:,})")

    # Bonus: a two-hop reachability count via one boolean mxm.
    two_hop = a.mxm(a, BOOL_OR_AND)
    print(f"    boolean A^2: {two_hop.nnz:,} two-hop-reachable pairs")

    print("\npipeline complete; all measurements matched the exact design.")


if __name__ == "__main__":
    main()
