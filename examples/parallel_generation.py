#!/usr/bin/env python3
"""Communication-free parallel generation (paper Section V).

Walks through the full parallel pipeline on a simulated cluster:

1. split the design's factor chain into A = B ⊗ C under a memory budget,
2. slice B's triples evenly over ranks (CSC order, rebased columns),
3. every rank independently forms its block Ap = Bp ⊗ C,
4. audit the invariants behind the paper's linear-scaling claim
   (balance, disjointness, full coverage),
5. write per-rank TSV edge files and reassemble them,
6. sweep rank counts to show the simulated scaling curve.

Run:  python examples/parallel_generation.py
"""

import tempfile
from pathlib import Path

from repro import ParallelKroneckerGenerator, PowerLawDesign, VirtualCluster
from repro.io import read_rank_files, write_rank_files
from repro.parallel.scaling import run_scaling_study
from repro.validate import audit_partition, validate_design


def main() -> None:
    design = PowerLawDesign([3, 4, 5, 9, 16])  # 97,920-edge product
    chain = design.to_chain()
    cluster = VirtualCluster(n_ranks=8, memory_entries=1_000_000)
    print(f"design : {design}")
    print(f"cluster: {cluster}")

    # -- 1-3. Partition and generate.
    gen = ParallelKroneckerGenerator(chain, cluster)
    plan = gen.plan
    print(
        f"split at factor {plan.split_index}: "
        f"nnz(B)={plan.b_chain.nnz:,}, nnz(C)={plan.c_chain.nnz:,}"
    )
    blocks = gen.generate_blocks()
    for block in blocks[:3]:
        print(f"  rank {block.rank}: {block.nnz:,} edges in {block.elapsed_s * 1e3:.2f} ms")
    print(f"  ... ({len(blocks)} ranks total)")

    # -- 4. The invariants that make rate scale linearly with ranks.
    audit = audit_partition(plan, blocks, chain.nnz)
    print(audit.to_text())
    assert audit.complete and audit.balanced

    # -- 5. Per-rank edge files, exactly as a real cluster would write them.
    with tempfile.TemporaryDirectory() as tmp:
        paths = write_rank_files(tmp, blocks)
        print(f"wrote {len(paths)} rank files to {Path(tmp).name}/")
        merged = read_rank_files(tmp, chain.shape)
        assert merged.equal(chain.materialize())
        print("reassembled union matches the direct product: True")

    # The assembled graph also passes full design validation.
    graph = gen.generate_graph(remove_loop_at=design.loop_vertex)
    print(f"validation: {validate_design(design, graph=graph).passed}")

    # -- 6. Simulated scaling sweep (Fig. 3's shape).
    print()
    study = run_scaling_study(chain, [1, 2, 4, 8])
    print(study.to_text())
    print(f"linear within tolerance: {study.is_linear(rel_tol=0.6)}")


if __name__ == "__main__":
    main()
