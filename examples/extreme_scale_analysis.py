#!/usr/bin/env python3
"""Analyze graphs far beyond any computer (the paper's Figs. 5-7).

Reproduces the paper's extreme-scale designs — up to 10^30 edges — and
everything it reports about them, on this machine, in seconds:

* exact vertex/edge/triangle counts (asserted against the paper),
* the full exact degree distribution,
* power-law fit and deviation-from-line measurements,
* lazy queries (degree of any single vertex) on the never-formed graph.

Run:  python examples/extreme_scale_analysis.py
"""

from repro import PowerLawDesign
from repro.analysis import fit_power_law, power_law_deviation
from repro.analysis.powerlaw import _log10_exact

FIG5 = [3, 4, 5, 9, 16, 25, 81, 256, 625]
FIG7 = [3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641]


def show(design: PowerLawDesign, name: str) -> None:
    dist = design.degree_distribution
    fit = fit_power_law(dist)
    dev = power_law_deviation(dist, 1.0, _log10_exact(design.power_law_coefficient))
    print(f"{name}: m̂ = {list(design.star_sizes)} (loops: {design.self_loop.value})")
    print(f"  vertices : {design.num_vertices:,}")
    print(f"  edges    : {design.num_edges:,}")
    print(f"  triangles: {design.num_triangles:,}")
    print(f"  distinct degrees: {len(dist):,}, max degree {dist.max_degree():,}")
    print(f"  fitted alpha {fit.alpha:.3f}, max deviation from n(d)=c/d: {dev:.3f} decades")
    print()


def main() -> None:
    # Fig. 5: quadrillion edges, perfectly on the line, zero triangles.
    fig5 = PowerLawDesign(FIG5)
    show(fig5, "Fig. 5 (10^15 edges)")
    assert fig5.num_edges == 1_433_272_320_000_000

    # Fig. 6: same stars, center loops -> 1.27e16 triangles.
    fig6 = PowerLawDesign(FIG5, "center")
    show(fig6, "Fig. 6 (10^15 edges, center loops)")
    assert fig6.num_triangles == 12_720_651_636_552_427  # exact (paper: ...426)

    # Fig. 7: the 10^30-edge decetta graph.
    fig7 = PowerLawDesign(FIG7, "leaf")
    show(fig7, "Fig. 7 (10^30 edges, leaf loops)")
    assert fig7.num_triangles == 178_940_587

    # Lazy queries on the never-materialized 10^30-edge graph.
    chain = fig7.to_chain()
    print("lazy queries on the 10^30-edge product:")
    print(f"  degree of vertex 0 (all centers): {chain.degree_of(0):,}")
    print(f"  degree of last vertex (looped leaves): {chain.degree_of(chain.num_vertices - 1)}")
    print(f"  self-loop present pre-removal: {chain.entry(chain.num_vertices - 1, chain.num_vertices - 1) == 1}")


if __name__ == "__main__":
    main()
