#!/usr/bin/env python3
"""Design-to-spec: hit a target scale without trial and error.

The scenario from the paper's introduction: a graph-systems engineer
needs a benchmark graph with roughly N edges and exactly known
properties.  With random generators this is a generate-measure-adjust
loop; with Kronecker designs it is a search over star-size lists whose
edge counts are exact closed forms.

This example designs graphs at three scales (10^6, 10^12, 10^18 edges),
prints their exact properties, and — for the realizable one — proves
the properties by building the graph.

Run:  python examples/design_to_spec.py
"""

from repro import PowerLawDesign, design_for_scale
from repro.validate import validate_design


def describe(design: PowerLawDesign, target: int) -> None:
    ratio = design.num_edges / target
    print(f"target {target:.0e} edges -> m̂ = {list(design.star_sizes)}")
    print(f"  exact vertices : {design.num_vertices:,}")
    print(f"  exact edges    : {design.num_edges:,}  ({ratio:.2f}x target)")
    print(f"  exact triangles: {design.num_triangles:,}")
    print(f"  exactly on n(d)=c/d: {design.is_exact_power_law()}")
    print()


def main() -> None:
    # -- A realizable graph: design it, then prove the numbers by building.
    target = 10**6
    design = design_for_scale(target, rel_tol=0.5)
    describe(design, target)
    report = validate_design(design)
    print(f"realized and validated: {report.passed}")
    print()

    # -- Scales where generation is impossible; design cost is unchanged.
    for exponent in (12, 18):
        target = 10**exponent
        design = design_for_scale(target, rel_tol=0.5)
        describe(design, target)

    # -- Want triangles? Same search with the Case-1 decoration.
    rich = design_for_scale(10**9, self_loop="center", rel_tol=0.5)
    print(
        f"triangle-rich 10^9-edge design: m̂ = {list(rich.star_sizes)}, "
        f"{rich.num_triangles:,} triangles exactly"
    )


if __name__ == "__main__":
    main()
