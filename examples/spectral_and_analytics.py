#!/usr/bin/env python3
"""Beyond the paper: spectra, centrality, trusses on designed graphs.

The paper's conclusion lists properties "that could be computed in
future research, such as eigenvectors, ... betweenness centrality, and
triangle enumeration".  This example runs all of them on an exactly
designed graph, cross-checking each computational result against a
closed form where one exists:

* exact spectrum of the Kronecker product from constituent spectra,
  confirmed by matrix-free power iteration (the "vec trick");
* betweenness / eigenvector centrality on the realized graph;
* triangle enumeration and k-truss decomposition (the GraphChallenge
  workloads the generator feeds);
* exact global clustering coefficient from the degree distribution.

Run:  python examples/spectral_and_analytics.py
"""

from repro import PowerLawDesign
from repro.analysis import (
    betweenness_centrality,
    count_by_enumeration,
    eigenvector_centrality,
    k_truss,
    max_truss_number,
    top_k_vertices,
)
from repro.design import design_spectrum
from repro.kron import power_iteration


def main() -> None:
    design = PowerLawDesign([3, 4, 5], self_loop="center")
    print(f"design: {design}")
    print(f"  exact triangles           : {design.num_triangles:,}")
    print(f"  exact wedges              : {design.num_wedges:,}")
    print(f"  exact clustering coeff    : {design.clustering_coefficient} "
          f"= {float(design.clustering_coefficient):.6f}")

    # -- exact spectrum from the constituents (nothing materialized).
    spectrum = design_spectrum(design)
    print(f"\nspectrum of the raw product: {len(spectrum)} distinct eigenvalues "
          f"over dimension {spectrum.dimension:,}")
    print(f"  spectral radius (exact path)   : {spectrum.spectral_radius:.6f}")

    # -- the same radius, matrix-free, via Kronecker matvec.
    radius, _, iterations = power_iteration(design.to_chain())
    print(f"  spectral radius (power iter.)  : {radius:.6f} "
          f"({iterations} iterations, product never formed)")

    # -- realize and run the analytics the paper's community benchmarks.
    graph = design.realize()
    print(f"\nrealized: {graph}")

    enumerated = count_by_enumeration(graph)
    print(f"  triangles by enumeration: {enumerated:,} "
          f"(exact prediction: {design.num_triangles:,})")
    assert enumerated == design.num_triangles

    bc = betweenness_centrality(graph)
    ec = eigenvector_centrality(graph)
    print("  top-3 betweenness:", [(v, round(s, 4)) for v, s in top_k_vertices(bc, 3)])
    print("  top-3 eigenvector:", [(v, round(s, 4)) for v, s in top_k_vertices(ec, 3)])

    kmax = max_truss_number(graph)
    t3 = k_truss(graph, 3)
    print(f"  3-truss: {t3.num_edges:,} of {graph.num_edges:,} edges "
          f"survive; max truss number = {kmax}")

    print("\nall computational results agree with the closed forms.")


if __name__ == "__main__":
    main()
