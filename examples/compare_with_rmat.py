#!/usr/bin/env python3
"""Exact design vs. R-MAT trial-and-error (the paper's motivation).

Puts the two design workflows side by side on the same goal — a graph
with ~50,000 edges:

* R-MAT (Graph500 baseline): generate, measure, adjust, repeat; the
  realized edge count / degree distribution / triangles are random and
  only measurable after generation, and the output carries the
  "problematic" structure the paper calls out (empty vertices,
  self-loops).
* Kronecker exact design: one search over closed forms, properties
  exact before generation, structurally clean output.

Run:  python examples/compare_with_rmat.py
"""

import time

import numpy as np

from repro import design_for_scale
from repro.baselines import RMATParameters, iterative_rmat_design
from repro.validate import audit_graph_structure, validate_design

TARGET = 50_000


def main() -> None:
    # ------------------------------------------------ R-MAT path
    print(f"goal: a benchmark graph with ~{TARGET:,} edges\n")
    params = RMATParameters(scale=12)
    t0 = time.perf_counter()
    result = iterative_rmat_design(
        TARGET, params, rel_tol=0.02, rng=np.random.default_rng(7)
    )
    rmat_s = time.perf_counter() - t0
    audit = audit_graph_structure(result.graph)
    print("R-MAT trial-and-error:")
    print(f"  {result.to_text()}")
    print(f"  wall time: {rmat_s:.2f}s")
    print(f"  realized triangles (only knowable post-hoc): "
          f"{result.graph.num_triangles():,}")
    print(f"  empty vertices: {audit.num_empty_vertices:,}, "
          f"self-loops: {audit.num_self_loops}")
    print()

    # ------------------------------------------------ exact-design path
    t0 = time.perf_counter()
    design = design_for_scale(TARGET, rel_tol=0.5)
    design_s = time.perf_counter() - t0
    print("Kronecker exact design:")
    print(f"  m̂ = {list(design.star_sizes)} in {design_s * 1e3:.1f} ms, "
          f"0 edges materialized during design")
    print(f"  exact edges    : {design.num_edges:,}")
    print(f"  exact triangles: {design.num_triangles:,}")
    print(f"  exact max degree: {design.max_degree:,}")

    report = validate_design(design)
    struct = report.structure
    print(f"  realized graph validates exactly: {report.passed}")
    print(f"  empty vertices: {struct.num_empty_vertices}, "
          f"self-loops: {struct.num_self_loops}")
    print()
    print(
        "summary: the random path materialized "
        f"{result.total_edges_generated:,} edges across {result.iterations} "
        "rounds to *approximate* one property; the exact path knew every "
        "property in advance."
    )


if __name__ == "__main__":
    main()
